"""Heterogeneous-graph extension of AdamGNN.

The paper's conclusion names extending AdamGNN to heterogeneous networks
as future work; this module provides that extension:

* :class:`RelationalGCNConv` — an R-GCN-style convolution with one weight
  matrix per edge type (plus a self transform), the standard substrate for
  typed graphs;
* :class:`TypedFitnessScorer` — Eq. 2 generalised with a *per-edge-type*
  attention vector, so the relation strength between an ego and a member
  depends on how they are connected;
* :class:`HeteroAdamGNN` — the AdamGNN pipeline with the typed fitness and
  an R-GCN primary layer.  Pooled hyper-graphs collapse edge types (a
  hyper-edge aggregates relations of several types), so levels ≥ 1 reuse
  the homogeneous machinery unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..tensor.random import make_rng

from ..graph import normalize_edges
from ..nn import Linear, Module, ModuleList, Parameter, init
from ..tensor import (Tensor, gather_rows, leaky_relu, relu, segment_mean,
                      segment_softmax, sigmoid)
from .egonet import EgoNetworks, build_ego_networks
from .flyback import FlybackAggregator
from .model import AdamGNNOutput
from .pooling import AdaptiveGraphPooling
from .selection import build_assignment, hyper_graph_connectivity, select_egos
from .unpooling import unpool
from ..layers import GCNConv
from ..tensor import segment_sum


class RelationalGCNConv(Module):
    """R-GCN convolution: ``h_i' = W0 h_i + Σ_r Σ_{j∈N_r(i)} W_r h_j / c_ir``.

    Parameters
    ----------
    in_features, out_features:
        Transform dimensions (shared across relations).
    num_relations:
        Number of edge types.
    """

    def __init__(self, in_features: int, out_features: int,
                 num_relations: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_relations < 1:
            raise ValueError("num_relations must be >= 1")
        rng = rng if rng is not None else make_rng(0)
        seeds = rng.integers(0, 2 ** 31, size=num_relations + 1)
        self.num_relations = num_relations
        self.self_loop = Linear(in_features, out_features,
                                rng=make_rng(int(seeds[0])))
        self.relation_linears = ModuleList(
            Linear(in_features, out_features, bias=False,
                   rng=make_rng(int(seeds[1 + r])))
            for r in range(num_relations))

    def forward(self, x: Tensor, edge_index: np.ndarray,
                edge_type: np.ndarray,
                num_nodes: Optional[int] = None) -> Tensor:
        n = num_nodes if num_nodes is not None else x.shape[0]
        edge_type = np.asarray(edge_type, dtype=np.int64)
        if edge_type.shape[0] != edge_index.shape[1]:
            raise ValueError("edge_type must have one entry per edge")
        out = self.self_loop(x)
        for r, linear in enumerate(self.relation_linears):
            mask = edge_type == r
            if not mask.any():
                continue
            src = edge_index[0][mask]
            dst = edge_index[1][mask]
            messages = gather_rows(linear(x), src)
            out = out + segment_mean(messages, dst, n)
        return out


class TypedFitnessScorer(Module):
    """Eq. 2 with a per-edge-type attention vector.

    Pairs connected by relation ``r`` are scored with attention vector
    ``a_r``; pairs reachable only through multi-hop paths (λ > 1) fall back
    to a shared vector.  The f_φ^c linearity term is type-agnostic, as in
    the homogeneous model.
    """

    def __init__(self, in_features: int, num_relations: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else make_rng(0)
        self.num_relations = num_relations
        self.transform = Linear(in_features, in_features, bias=False,
                                rng=rng)
        # One attention vector per relation plus the multi-hop fallback.
        self.attention = Parameter(init.glorot_uniform(
            rng, 2 * in_features, num_relations + 1,
            shape=(num_relations + 1, 2 * in_features)))

    def pair_types(self, egos: EgoNetworks, edge_index: np.ndarray,
                   edge_type: np.ndarray) -> np.ndarray:
        """Relation of each (ego, member) pair; fallback id for non-edges."""
        table = {}
        for (u, v), r in zip(edge_index.T.tolist(),
                             np.asarray(edge_type).tolist()):
            table[(u, v)] = int(r)
        fallback = self.num_relations
        return np.asarray([table.get((int(i), int(j)), fallback)
                           for i, j in zip(egos.ego, egos.member)],
                          dtype=np.int64)

    def forward(self, h: Tensor, egos: EgoNetworks, edge_index: np.ndarray,
                edge_type: np.ndarray) -> Tuple[Tensor, Tensor]:
        if egos.num_pairs == 0:
            dtype = h.data.dtype
            return (Tensor(np.zeros(0, dtype=dtype), dtype=dtype),
                    Tensor(np.zeros(egos.num_nodes, dtype=dtype),
                           dtype=dtype))
        wh = self.transform(h)
        d = wh.shape[-1]
        types = self.pair_types(egos, edge_index, edge_type)
        a_left = self.attention[:, :d]     # (R+1, d)
        a_right = self.attention[:, d:]
        member_part = leaky_relu(gather_rows(wh, egos.member))
        ego_part = leaky_relu(gather_rows(wh, egos.ego))
        left = (member_part * gather_rows(a_left, types)).sum(axis=-1)
        right = (ego_part * gather_rows(a_right, types)).sum(axis=-1)
        f_s = segment_softmax(left + right, egos.member, egos.num_nodes)
        dots = (gather_rows(h, egos.member)
                * gather_rows(h, egos.ego)).sum(axis=-1)
        phi_pairs = f_s * sigmoid(dots)
        phi_nodes = segment_mean(phi_pairs.reshape(-1, 1), egos.ego,
                                 egos.num_nodes).reshape(-1)
        return phi_pairs, phi_nodes


class HeteroAdamGNN(Module):
    """AdamGNN for heterogeneous (typed-edge) graphs.

    Level 0 uses an R-GCN primary layer and the typed fitness scorer;
    pooled levels collapse edge types and reuse the homogeneous AGP.
    """

    def __init__(self, in_features: int, num_relations: int,
                 hidden: int = 64, num_levels: int = 2,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else make_rng(0)
        seeds = rng.integers(0, 2 ** 31, size=num_levels + 4)
        self.num_relations = num_relations
        self.input_conv = RelationalGCNConv(
            in_features, hidden, num_relations,
            rng=make_rng(int(seeds[0])))
        self.fitness = TypedFitnessScorer(
            hidden, num_relations, rng=make_rng(int(seeds[1])))
        from .pooling import HyperNodeFeatures
        self.features = HyperNodeFeatures(
            hidden, rng=make_rng(int(seeds[2])))
        self.level1_conv = GCNConv(hidden, hidden,
                                   rng=make_rng(int(seeds[3])))
        self.upper = ModuleList(
            AdaptiveGraphPooling(hidden,
                                 rng=make_rng(int(seeds[4 + k])))
            for k in range(num_levels - 1))
        self.upper_convs = ModuleList(
            GCNConv(hidden, hidden,
                    rng=make_rng(int(seeds[4 + k]) + 1))
            for k in range(num_levels - 1))
        self.flyback = FlybackAggregator(
            hidden, rng=make_rng(int(seeds[-1])))

    def forward(self, x: Tensor, edge_index: np.ndarray,
                edge_type: np.ndarray) -> AdamGNNOutput:
        n = x.shape[0]
        h0 = relu(self.input_conv(x, edge_index, edge_type, num_nodes=n))

        # Level 1: typed fitness, homogeneous connectivity afterwards.
        egos = build_ego_networks(edge_index, n, radius=1)
        phi_pairs, phi_nodes = self.fitness(h0, egos, edge_index, edge_type)
        selected = select_egos(phi_nodes.data, egos, egos.sizes())
        assignment = build_assignment(phi_pairs, egos, selected)
        x1 = self.features(h0, phi_pairs, egos, assignment)
        edge_weight = np.ones(edge_index.shape[1], dtype=h0.data.dtype)
        edges1, weight1 = hyper_graph_connectivity(assignment, edge_index,
                                                   edge_weight)
        from .pooling import PooledLevel
        assignments = [assignment]
        level1 = PooledLevel(x=x1, edge_index=edges1, edge_weight=weight1,
                             assignment=assignment, batch=None,
                             phi_nodes=phi_nodes.data.copy())
        levels: List = [level1]
        messages: List[Tensor] = []
        m = assignment.num_hyper
        norm_e, norm_w = normalize_edges(edges1, weight1, m)
        h = relu(self.level1_conv(x1, norm_e, norm_w, num_nodes=m))
        messages.append(unpool(assignments, h))

        edges_k, weight_k = edges1, weight1
        for pooler, conv in zip(self.upper, self.upper_convs):
            if h.shape[0] < 2 or edges_k.shape[1] == 0:
                break
            level = pooler(h, edges_k, weight_k)
            if level.num_hyper >= h.shape[0] or level.num_hyper < 1:
                break
            norm_e, norm_w = normalize_edges(level.edge_index,
                                             level.edge_weight,
                                             level.num_hyper)
            h = relu(conv(level.x, norm_e, norm_w,
                          num_nodes=level.num_hyper))
            assignments.append(level.assignment)
            levels.append(level)
            messages.append(unpool(assignments, h))
            edges_k, weight_k = level.edge_index, level.edge_weight

        combined, beta = self.flyback(h0, messages)
        return AdamGNNOutput(h=combined, h0=h0, level_messages=messages,
                             beta=beta, levels=levels)
