"""The AdamGNN model (Algorithm 1) and its task heads.

One :class:`AdamGNN` forward pass:

1. primary node representation ``H_0 = ReLU(GCN_0(X))`` (Eq. 1);
2. for each granularity level k: adaptive graph pooling (Section 3.2), a
   level-k GCN on the hyper-graph, and unpooling of ``H_k`` back to the
   original nodes (Section 3.3);
3. flyback aggregation ``H = H_0 + Σ β_k Ĥ_k`` (Eq. 4);
4. optionally, the graph readout ``h_g = READOUT({H, Ĥ_1, …, Ĥ_K})``.

Pooling stops early when a level collapses below two hyper-nodes or runs
out of edges, so ``num_levels`` is an upper bound — the operator itself
stays hyper-parameter-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..tensor.random import make_rng

from ..graph import StructureCache, normalize_edges
from ..layers import GCNConv, mean_max_readout
from ..nn import Dropout, Linear, Module, ModuleList
from ..tensor import Tensor, relu
from ..tensor.workspace import ws_captured
from ..utils.timing import profile_phase
from .flyback import FlybackAggregator
from .pooling import AdaptiveGraphPooling, PooledLevel
from .structure import BatchStructure
from .unpooling import unpool


@dataclass
class AdamGNNOutput:
    """Everything a task head may need from one forward pass."""

    h: Tensor                       #: flyback-enhanced node representations
    h0: Tensor                      #: primary representations (Eq. 1)
    level_messages: List[Tensor]    #: Ĥ_1 … Ĥ_K on the original nodes
    beta: Tensor                    #: (K, n) flyback attention (Figure 2)
    levels: List[PooledLevel] = field(default_factory=list)
    graph_repr: Optional[Tensor] = None

    @property
    def num_levels(self) -> int:
        """Number of levels actually constructed (≤ configured K)."""
        return len(self.levels)

    def level1_egos(self) -> np.ndarray:
        """Selected ego node ids at level 1 (inputs to L_KL, Eq. 5)."""
        if not self.levels:
            return np.zeros(0, dtype=np.int64)
        return self.levels[0].assignment.selected


class AdamGNN(Module):
    """Adaptive Multi-grained GNN encoder.

    Parameters
    ----------
    in_features:
        Input feature dimension.
    hidden:
        Representation dimension ``d`` (64 in the paper).
    num_levels:
        Maximum number of granularity levels ``K`` (2–5 in the paper).
    radius:
        Ego-network radius λ (paper default 1).
    dropout:
        Dropout on the input features during training.
    use_flyback:
        Disable to reproduce the "no flyback" ablation of Table 5
        (``H = H_0``; unpooled messages still feed the graph readout).
    use_linearity:
        Forwarded to the fitness scorer (``f_φ^c`` ablation).
    """

    def __init__(self, in_features: int, hidden: int = 64,
                 num_levels: int = 3, radius: int = 1,
                 dropout: float = 0.0, use_flyback: bool = True,
                 use_linearity: bool = True, normalize_unpool: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_levels < 1:
            raise ValueError(f"num_levels must be >= 1, got {num_levels}")
        rng = rng if rng is not None else make_rng(0)
        seeds = rng.integers(0, 2 ** 31, size=2 * num_levels + 3)

        self.num_levels = num_levels
        self.radius = radius
        self.use_flyback = use_flyback
        self.normalize_unpool = normalize_unpool
        self.input_conv = GCNConv(in_features, hidden,
                                  rng=make_rng(int(seeds[0])))
        self.poolers = ModuleList(
            AdaptiveGraphPooling(hidden, radius=radius,
                                 use_linearity=use_linearity,
                                 rng=make_rng(int(seeds[1 + k])))
            for k in range(num_levels))
        self.level_convs = ModuleList(
            GCNConv(hidden, hidden,
                    rng=make_rng(
                        int(seeds[1 + num_levels + k])))
            for k in range(num_levels))
        self.flyback = FlybackAggregator(
            hidden, rng=make_rng(int(seeds[-2])))
        self.dropout = Dropout(dropout,
                               rng=make_rng(int(seeds[-1])))
        self.hidden = hidden
        # Plain attribute (not a Parameter/Module), so it stays out of
        # state_dict and checkpoints.  Memoises level-0 structure — GCN
        # normalisation and ego-network pair lists — across epochs; see
        # repro.graph.cache.
        self.structure_cache = StructureCache()

    def forward(self, x: Tensor, edge_index: np.ndarray,
                edge_weight: Optional[np.ndarray] = None,
                batch: Optional[np.ndarray] = None,
                num_graphs: Optional[int] = None,
                structure: Optional["BatchStructure"] = None,
                ) -> AdamGNNOutput:
        """Encode a graph (or a block-diagonal batch of graphs).

        ``edge_index``/``edge_weight`` are the *raw* structural edges; GCN
        normalisation happens internally at every level.  ``structure``
        optionally supplies precomputed level-0 structure (normalised
        edges + ego-network pair lists composed per batch, see
        ``repro.core.structure``) so the ``normalize`` and ``egonet``
        phases become lookups; it must describe exactly this input.
        """
        n = x.shape[0]
        cache = self.structure_cache
        if structure is not None and structure.num_nodes != n:
            raise ValueError(
                f"precomputed structure is for {structure.num_nodes} "
                f"nodes, input has {n}")
        if edge_weight is None:
            # A stable ones array (not a fresh np.ones each call) so the
            # identity-keyed structure/plan caches hit on epochs 2..N.
            edge_weight = cache.unit_edge_weights(edge_index,
                                                  dtype=x.data.dtype)

        x = self.dropout(x)
        with profile_phase("normalize"):
            # Level-0 structure is constant across epochs → precomputed
            # (minibatch composition) or memoised (full-batch identity).
            if structure is not None:
                norm_e, norm_w = (structure.norm_edge_index,
                                  structure.norm_edge_weight)
            else:
                norm_e, norm_w = cache.normalized_edges(edge_index,
                                                        edge_weight, n)
        with profile_phase("conv"):
            h0 = relu(self.input_conv(x, norm_e, norm_w, num_nodes=n))

        levels: List[PooledLevel] = []
        messages: List[Tensor] = []
        h = h0
        edges_k, weight_k, batch_k = edge_index, edge_weight, batch
        for k, (pooler, conv) in enumerate(zip(self.poolers,
                                               self.level_convs)):
            if h.shape[0] < 2 or edges_k.shape[1] == 0:
                break
            # Only level 0 sees the cache / precomputed pair lists:
            # pooled-level structure depends on learned fitness scores and
            # must recompute every epoch.
            level0 = k == 0
            level = pooler(
                h, edges_k, weight_k, batch=batch_k,
                cache=cache if level0 else None,
                egos=structure.egos
                if level0 and structure is not None else None,
                neighbors=structure.neighbors
                if level0 and structure is not None else None)
            m = level.num_hyper
            if m >= h.shape[0] or m < 1:
                # No coarsening progress — extra levels would only repeat
                # the same structure.
                break
            with profile_phase("normalize"):
                # Purely structural given the level's connectivity, so a
                # serving arena replays it with the captured edges; in
                # training the pooled weights move with the fitness and
                # this renormalises fresh every step.
                norm_e, norm_w = ws_captured(
                    lambda: normalize_edges(level.edge_index,
                                            level.edge_weight, m))
            with profile_phase("conv"):
                h = relu(conv(level.x, norm_e, norm_w, num_nodes=m))
            levels.append(level)
            with profile_phase("unpool"):
                messages.append(unpool([lvl.assignment for lvl in levels], h,
                                       normalize=self.normalize_unpool))
            edges_k, weight_k, batch_k = (level.edge_index,
                                          level.edge_weight, level.batch)
            if m < 2:
                break

        with profile_phase("flyback"):
            if self.use_flyback:
                combined, beta = self.flyback(h0, messages)
            else:
                combined = h0
                beta = Tensor(np.zeros((len(messages), n),
                                       dtype=h0.data.dtype),
                              dtype=h0.data.dtype)

        graph_repr = None
        if batch is not None:
            if num_graphs is None:
                num_graphs = int(batch.max()) + 1 if batch.size else 0
            graph_repr = mean_max_readout(combined, batch, num_graphs)
            for message in messages:
                graph_repr = graph_repr + mean_max_readout(
                    message, batch, num_graphs)

        return AdamGNNOutput(h=combined, h0=h0, level_messages=messages,
                             beta=beta, levels=levels, graph_repr=graph_repr)


class AdamGNNNodeClassifier(Module):
    """AdamGNN encoder + linear softmax head for node classification."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_levels: int = 3, radius: int = 1, dropout: float = 0.5,
                 use_flyback: bool = True, use_linearity: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else make_rng(0)
        seeds = rng.integers(0, 2 ** 31, size=2)
        self.encoder = AdamGNN(in_features, hidden=hidden,
                               num_levels=num_levels, radius=radius,
                               dropout=dropout, use_flyback=use_flyback,
                               use_linearity=use_linearity,
                               rng=make_rng(int(seeds[0])))
        self.head = Linear(hidden, num_classes,
                           rng=make_rng(int(seeds[1])))

    def forward(self, x: Tensor, edge_index: np.ndarray,
                edge_weight: Optional[np.ndarray] = None
                ) -> Tuple[Tensor, AdamGNNOutput]:
        out = self.encoder(x, edge_index, edge_weight)
        return self.head(out.h), out


class AdamGNNLinkPredictor(Module):
    """AdamGNN encoder with an inner-product edge decoder.

    For link prediction the paper sets ``L = L_R + γ L_KL`` (the task loss
    *is* the reconstruction loss); the decoder is ``σ(h_uᵀ h_v)``.
    """

    def __init__(self, in_features: int, hidden: int = 64,
                 num_levels: int = 3, radius: int = 1, dropout: float = 0.0,
                 use_flyback: bool = True, use_linearity: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.encoder = AdamGNN(in_features, hidden=hidden,
                               num_levels=num_levels, radius=radius,
                               dropout=dropout, use_flyback=use_flyback,
                               use_linearity=use_linearity, rng=rng)

    def forward(self, x: Tensor, edge_index: np.ndarray,
                edge_weight: Optional[np.ndarray] = None) -> AdamGNNOutput:
        return self.encoder(x, edge_index, edge_weight)


class AdamGNNGraphClassifier(Module):
    """AdamGNN encoder + MLP head for graph classification.

    The readout is ``[mean ‖ max]`` of the flyback representation plus the
    per-level unpooled messages (Algorithm 1 line 25), so the head input is
    ``2·hidden``.
    """

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_levels: int = 3, radius: int = 1, dropout: float = 0.0,
                 use_flyback: bool = True, use_linearity: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else make_rng(0)
        seeds = rng.integers(0, 2 ** 31, size=3)
        self.encoder = AdamGNN(in_features, hidden=hidden,
                               num_levels=num_levels, radius=radius,
                               dropout=dropout, use_flyback=use_flyback,
                               use_linearity=use_linearity,
                               rng=make_rng(int(seeds[0])))
        self.head_hidden = Linear(2 * hidden, hidden,
                                  rng=make_rng(int(seeds[1])))
        self.head_out = Linear(hidden, num_classes,
                               rng=make_rng(int(seeds[2])))

    def forward(self, x: Tensor, edge_index: np.ndarray,
                edge_weight: np.ndarray, batch: np.ndarray,
                num_graphs: int,
                structure: Optional[BatchStructure] = None,
                ) -> Tuple[Tensor, AdamGNNOutput]:
        out = self.encoder(x, edge_index, edge_weight, batch=batch,
                           num_graphs=num_graphs, structure=structure)
        logits = self.head_out(relu(self.head_hidden(out.graph_repr)))
        return logits, out
