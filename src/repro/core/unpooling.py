"""Graph UnPooling — top-down message passing (Section 3.3).

``Ĥ_k = S_1(…(S_{k-1}(S_k H_k)))`` — multiplying by the assignment matrices
in reverse restores level-k hyper-node representations onto the nodes of
the original graph.  Implemented with differentiable gather/segment ops so
gradients reach both the hyper-node states and the fitness values stored in
each ``S``.
"""

from __future__ import annotations

from typing import Sequence

from ..tensor import (Tensor, gather_scale_segment_sum, segment_normalize)
from .selection import Assignment


def apply_assignment(assignment: Assignment, h_hyper: Tensor,
                     normalize: bool = False) -> Tensor:
    """``S @ H`` — push hyper-node states down one level.

    Row j of the result is ``Σ_c S[j, c] · H[c]``: each original node
    receives the weighted combination of the hyper-nodes it belongs to, the
    weight being its fitness to that ego (1 for egos/retained nodes).

    With ``normalize`` each row of S is L1-normalised first, so
    the message is a weighted *average* of hyper-node states.  Without it,
    fitness values < 1 compound across levels and deep-level messages decay
    geometrically toward zero, starving the flyback aggregator of exactly
    the macro semantics the paper attributes to the upper levels (see
    DESIGN.md, "Implementation notes").
    """
    values = assignment.values
    if normalize:
        values = segment_normalize(values, assignment.rows,
                                   assignment.num_nodes)
    return gather_scale_segment_sum(h_hyper, assignment.cols, values,
                                    assignment.rows, assignment.num_nodes)


def unpool(assignments: Sequence[Assignment], h_top: Tensor,
           normalize: bool = False) -> Tensor:
    """Restore a level-k representation to the original graph.

    ``assignments`` must be ordered bottom-up (S_1 first); the sequence is
    applied in reverse, matching ``Ĥ_k = S_1(…(S_k H_k))``.
    """
    h = h_top
    for assignment in reversed(list(assignments)):
        h = apply_assignment(assignment, h, normalize=normalize)
    return h
