"""Explainability via flyback attention (Section 4.2, Figure 2).

The flyback β matrix assigns every node a distribution over granularity
levels.  Averaging those distributions per class shows which semantic scale
drives each class's predictions — the heat map the paper plots for ACM and
DBLP.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .model import AdamGNNOutput


def attention_by_class(output: AdamGNNOutput, labels: np.ndarray,
                       num_classes: int) -> np.ndarray:
    """Mean flyback attention per (class, level).

    Returns a ``(num_classes, K)`` array whose rows sum to 1 (K = number of
    levels actually constructed).  Classes with no nodes get uniform rows.
    """
    beta = output.beta.data  # (K, n)
    k = beta.shape[0]
    if k == 0:
        return np.full((num_classes, 1), 1.0, dtype=beta.dtype)
    labels = np.asarray(labels, dtype=np.int64)
    table = np.zeros((num_classes, k), dtype=beta.dtype)
    for cls in range(num_classes):
        members = np.flatnonzero(labels == cls)
        if members.size == 0:
            table[cls] = 1.0 / k
        else:
            table[cls] = beta[:, members].mean(axis=1)
    return table


def format_attention_heatmap(table: np.ndarray,
                             class_names: List[str] | None = None) -> str:
    """Render the Figure-2 heat map as fixed-width text with shade glyphs."""
    num_classes, k = table.shape
    if class_names is None:
        class_names = [f"class {c}" for c in range(num_classes)]
    glyphs = " ░▒▓█"
    header = "".join(f"  level-{lvl + 1}" for lvl in range(k))
    lines = [f"{'':<22}{header}"]
    lo, hi = float(table.min()), float(table.max())
    span = (hi - lo) or 1.0
    for cls in range(num_classes):
        cells = []
        for lvl in range(k):
            value = table[cls, lvl]
            shade = glyphs[min(int((value - lo) / span * (len(glyphs) - 1)),
                               len(glyphs) - 1)]
            cells.append(f"  {shade} {value:.2f}")
        lines.append(f"{class_names[cls]:<22}" + "".join(cells))
    return "\n".join(lines)


def level_usage_summary(output: AdamGNNOutput) -> Dict[str, float]:
    """Coarse diagnostics: per-level mean attention and coarsening ratios."""
    beta = output.beta.data
    summary: Dict[str, float] = {}
    for lvl in range(beta.shape[0]):
        summary[f"mean_beta_level_{lvl + 1}"] = float(beta[lvl].mean())
    prev = output.h0.shape[0]
    for lvl, level in enumerate(output.levels):
        summary[f"coarsen_ratio_level_{lvl + 1}"] = level.num_hyper / prev
        prev = level.num_hyper
    return summary
