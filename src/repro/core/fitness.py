"""Fitness scoring (Eq. 2).

``f_φ(v_i, v_j) = f_φ^s(v_i, v_j) × f_φ^c(v_i, v_j)`` where

* ``f_φ^s`` is a GAT-style attention
  ``exp(aᵀ σ(W h_j ‖ W h_i)) / Σ_{v_r ∈ N_j^λ} exp(aᵀ σ(W h_j ‖ W h_r))`` —
  note the normalisation runs over the *member's* λ-neighbourhood, i.e.
  over all candidate egos competing for node ``j``;
* ``f_φ^c = sigmoid(h_jᵀ · h_i)`` adds the dot-product linearity term
  motivated by neural collaborative filtering (He et al. 2017).

The per-ego fitness is the mean over members,
``φ_i = (1/|N_i^λ|) Σ_j φ_ij``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor.random import make_rng

from ..nn import Linear, Module, Parameter, init
from ..tensor import (Tensor, gather_rows, leaky_relu, pair_dot,
                      segment_mean, segment_softmax, sigmoid)
from .egonet import EgoNetworks


class FitnessScorer(Module):
    """Computes per-pair fitness φ_ij and per-ego fitness φ_i.

    Parameters
    ----------
    in_features:
        Dimension of the node representations ``h``.
    hidden:
        Output dimension of the shared transform ``W`` (defaults to
        ``in_features``, matching the paper's single weight matrix).
    use_linearity:
        Include the ``f_φ^c`` sigmoid dot-product factor.  Exposed so the
        ablation bench can switch it off.
    """

    def __init__(self, in_features: int, hidden: Optional[int] = None,
                 use_linearity: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else make_rng(0)
        hidden = hidden if hidden is not None else in_features
        self.transform = Linear(in_features, hidden, bias=False, rng=rng)
        self.attention = Parameter(
            init.glorot_uniform(rng, 2 * hidden, 1, shape=(2 * hidden,)))
        self.use_linearity = use_linearity

    def pair_scores(self, h: Tensor, egos: EgoNetworks) -> Tensor:
        """φ_ij for every (ego i, member j) pair, in pair-list order."""
        if egos.num_pairs == 0:
            return Tensor(np.zeros(0, dtype=h.data.dtype),
                          dtype=h.data.dtype)
        wh = self.transform(h)
        d = wh.shape[-1]
        a_left = self.attention[:d]
        a_right = self.attention[d:]
        # aᵀ σ(W h_j ‖ W h_i) with σ applied before the projection is the
        # published form; split the dot product into member/ego halves.
        # σ is elementwise, so the per-pair gather commutes with it and
        # with the projection: compute both halves once per *node*, then
        # gather per pair — O(N·d + P) instead of O(P·d), bit-identical.
        act = leaky_relu(wh)
        left = act @ a_left
        right = act @ a_right
        logits = gather_rows(left, egos.member) + gather_rows(right, egos.ego)
        # Normalise over the member's λ-neighbourhood: all pairs that share
        # the same member node compete (the Σ_{v_r ∈ N_j^λ} denominator).
        f_s = segment_softmax(logits, egos.member, egos.num_nodes)
        if not self.use_linearity:
            return f_s
        # Fused gather-gather-dot: one graph node instead of three, no
        # (P, d) member/ego tensors retained in the graph.
        dots = pair_dot(h, egos.member, egos.ego)
        f_c = sigmoid(dots)
        return f_s * f_c

    def forward(self, h: Tensor, egos: EgoNetworks) -> Tuple[Tensor, Tensor]:
        """Return ``(φ_pairs, φ_nodes)``.

        ``φ_nodes[i]`` is the ego-network fitness φ_i (zero for isolated
        nodes, which have no members and are never selected).
        """
        phi_pairs = self.pair_scores(h, egos)
        phi_nodes = segment_mean(phi_pairs.reshape(-1, 1), egos.ego,
                                 egos.num_nodes).reshape(-1)
        return phi_pairs, phi_nodes
