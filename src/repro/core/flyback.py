"""Flyback aggregation (Eq. 4, Section 3.4).

``H = H_0 + Σ_k β_k Ĥ_k`` where the per-node, per-level attention

``β_k(v_i) = softmax_k( aᵀ σ( W Ĥ_k(v_i) ‖ H_0(v_i) ) )``

weighs the message each node received from each granularity level.  The β
matrix doubles as the model's explanation signal (Figure 2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..tensor.random import make_rng

from ..nn import Linear, Module, Parameter, init
from ..tensor import (Tensor, fast_kernels_enabled, leaky_relu,
                      leaky_relu_project, softmax, stack)
from ..tensor import workspace as _ws


def _weighted_combine(h0: Tensor, messages: Sequence[Tensor],
                      beta: Tensor) -> Tensor:
    """``H = H_0 + Σ_k β_k ⊙ Ĥ_k`` as one autograd node.

    The compositional loop builds a getitem/reshape/mul/add chain per
    level (four graph nodes and three ``(n, d)`` temporaries each); the
    fused node accumulates in place and hands each parent its exact VJP:
    ``grad`` to ``H_0``, ``β_k·grad`` to message k, and the row-wise dot
    ``⟨grad, Ĥ_k⟩`` to row k of β.
    """
    ws = _ws.active_workspace()
    if ws is None:
        out_data = h0.data.copy()
    else:
        out_data = ws.take(h0.data.shape, h0.data.dtype)
        np.copyto(out_data, h0.data)
    for k, message in enumerate(messages):
        # The β-scaled message lands in a reusable scratch buffer (a plain
        # temporary when no workspace is active) before the in-place add —
        # same multiply, same add, bit for bit.
        scaled = np.multiply(
            message.data, beta.data[k][:, None],
            out=_ws.ws_out(message.data.shape,
                           np.result_type(message.data, beta.data)))
        out_data += scaled

    def backward(grad: np.ndarray) -> None:
        if h0.requires_grad:
            h0._accumulate(grad)
        if beta.requires_grad:
            gb = np.empty_like(beta.data)
            for k, message in enumerate(messages):
                np.einsum("ij,ij->i", grad, message.data, out=gb[k])
            beta._accumulate(gb)
        for k, message in enumerate(messages):
            if message.requires_grad:
                message._accumulate(grad * beta.data[k][:, None])

    return h0._make_child(out_data, (h0, beta) + tuple(messages), backward)


class FlybackAggregator(Module):
    """Attention over per-level messages.

    Parameters
    ----------
    in_features:
        Dimension of the node representations.
    """

    def __init__(self, in_features: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else make_rng(0)
        self.transform = Linear(in_features, in_features, bias=False, rng=rng)
        self.attention = Parameter(
            init.glorot_uniform(rng, 2 * in_features, 1,
                                shape=(2 * in_features,)))

    def level_logits(self, h0: Tensor, messages: Sequence[Tensor]) -> Tensor:
        """``(K, n)`` attention logits, one row per granularity level."""
        d = h0.shape[-1]
        a_left = self.attention[:d]
        a_right = self.attention[d:]
        right = leaky_relu_project(h0, a_right)
        rows: List[Tensor] = []
        for message in messages:
            left = leaky_relu_project(self.transform(message), a_left)
            rows.append(left + right)
        return stack(rows, axis=0)

    def forward(self, h0: Tensor, messages: Sequence[Tensor]
                ) -> Tuple[Tensor, Tensor]:
        """Return ``(H, β)``.

        ``H`` is the flyback-enhanced representation of Eq. 4; ``β`` has
        shape ``(K, n)`` with columns summing to one — β[k, i] is node i's
        attention on the level-(k+1) message.
        """
        messages = list(messages)
        if not messages:
            return h0, Tensor(np.zeros((0, h0.shape[0]),
                                       dtype=h0.data.dtype),
                              dtype=h0.data.dtype)
        logits = self.level_logits(h0, messages)
        beta = softmax(logits, axis=0)
        if fast_kernels_enabled():
            return _weighted_combine(h0, messages, beta), beta
        combined = h0
        for k, message in enumerate(messages):
            combined = combined + message * beta[k].reshape(-1, 1)
        return combined, beta
