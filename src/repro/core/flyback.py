"""Flyback aggregation (Eq. 4, Section 3.4).

``H = H_0 + Σ_k β_k Ĥ_k`` where the per-node, per-level attention

``β_k(v_i) = softmax_k( aᵀ σ( W Ĥ_k(v_i) ‖ H_0(v_i) ) )``

weighs the message each node received from each granularity level.  The β
matrix doubles as the model's explanation signal (Figure 2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Linear, Module, Parameter, init
from ..tensor import Tensor, leaky_relu, softmax, stack


class FlybackAggregator(Module):
    """Attention over per-level messages.

    Parameters
    ----------
    in_features:
        Dimension of the node representations.
    """

    def __init__(self, in_features: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.transform = Linear(in_features, in_features, bias=False, rng=rng)
        self.attention = Parameter(
            init.glorot_uniform(rng, 2 * in_features, 1,
                                shape=(2 * in_features,)))

    def level_logits(self, h0: Tensor, messages: Sequence[Tensor]) -> Tensor:
        """``(K, n)`` attention logits, one row per granularity level."""
        d = h0.shape[-1]
        a_left = self.attention[:d]
        a_right = self.attention[d:]
        right = leaky_relu(h0) @ a_right
        rows: List[Tensor] = []
        for message in messages:
            left = leaky_relu(self.transform(message)) @ a_left
            rows.append(left + right)
        return stack(rows, axis=0)

    def forward(self, h0: Tensor, messages: Sequence[Tensor]
                ) -> Tuple[Tensor, Tensor]:
        """Return ``(H, β)``.

        ``H`` is the flyback-enhanced representation of Eq. 4; ``β`` has
        shape ``(K, n)`` with columns summing to one — β[k, i] is node i's
        attention on the level-(k+1) message.
        """
        messages = list(messages)
        if not messages:
            return h0, Tensor(np.zeros((0, h0.shape[0])))
        logits = self.level_logits(h0, messages)
        beta = softmax(logits, axis=0)
        combined = h0
        for k, message in enumerate(messages):
            combined = combined + message * beta[k].reshape(-1, 1)
        return combined, beta
