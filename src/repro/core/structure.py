"""Per-graph structure precomputation and block-diagonal composition.

Everything AdamGNN needs at level 0 — λ-hop ego-network pair lists, the
GCN-normalised edge weights of Eq. 1, unit edge weights — is a pure
function of each member graph's static topology.  Minibatch training used
to recompute all of it per batch per epoch (BFS + symmetric normalisation
on the freshly collated arrays); instead, this module computes each
graph's structure **once per dataset** and *composes* batch-level
structure by offsetting node ids into the block-diagonal batch:

* batch ego-networks  = union of per-graph pair lists, ids offset
  (:func:`repro.core.egonet.compose_ego_networks`);
* batch GCN weights   = concatenation of per-graph normalised edge parts
  followed by per-graph self-loop parts
  (:func:`repro.graph.normalize.gcn_edge_weight_parts`).

Both compositions are *exact* — bit-identical to direct recomputation on
the collated batch — because neither GCN degrees nor λ-hop reachability
ever cross connected components, and the concatenation orders mirror what
the direct code paths emit.  The composition property tests
(``tests/core/test_structure_composition.py``) pin this down.

Composition applies to **level 0 only**: pooled-level topology depends on
learned fitness scores and legitimately changes every epoch, so it is
never precomputed or cached anywhere in this library.

:class:`DatasetStructures` bundles the per-graph precomputations (lazy,
one per graph) with a :class:`~repro.graph.cache.BatchStructureCache`, so
the fixed val/test chunks and recurring train chunks return the *same*
collated batch object across epochs — whose arrays then hit every
identity-keyed cache downstream (structure cache, segment plans, SpMV
operators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph import Graph, GraphBatch
from ..graph.cache import DEFAULT_BATCH_CAPACITY, BatchStructureCache
from ..graph.normalize import gcn_edge_weight_parts
from .egonet import (EgoNetworks, build_ego_networks, compose_ego_networks,
                     one_hop_neighbors)


@dataclass
class GraphStructure:
    """Static level-0 structure of one member graph (precomputed once)."""

    graph: Graph
    egos: EgoNetworks            #: λ-hop ego-network pair list
    neighbors: EgoNetworks       #: 1-hop pairs (same object when λ == 1)
    norm_weight: np.ndarray      #: normalised weights of the graph's edges
    loop_weight: np.ndarray      #: normalised self-loop weight per node


@dataclass
class BatchStructure:
    """Composed level-0 structure of one block-diagonal batch."""

    egos: EgoNetworks            #: batch-level λ-hop pair list
    neighbors: EgoNetworks       #: batch-level 1-hop pair list
    norm_edge_index: np.ndarray  #: ``(2, E + N)`` edges incl. self-loops
    norm_edge_weight: np.ndarray  #: matching normalised weights

    @property
    def num_nodes(self) -> int:
        return self.egos.num_nodes


def precompute_graph_structure(graph: Graph, radius: int = 1,
                               ) -> GraphStructure:
    """All static level-0 structure of ``graph`` for ego radius ``radius``."""
    n = graph.num_nodes
    egos = build_ego_networks(graph.edge_index, n, radius=radius)
    neighbors = (egos if radius == 1
                 else one_hop_neighbors(graph.edge_index, n))
    norm_weight, loop_weight = gcn_edge_weight_parts(
        graph.edge_index, graph.edge_weight, n)
    return GraphStructure(graph=graph, egos=egos, neighbors=neighbors,
                          norm_weight=norm_weight, loop_weight=loop_weight)


def compose_batch(graphs: Sequence[Graph],
                  structures: Sequence[GraphStructure],
                  y: Optional[np.ndarray] = None,
                  ) -> Tuple[GraphBatch, BatchStructure]:
    """Collate ``graphs`` and compose their precomputed level-0 structure.

    The returned batch equals :meth:`GraphBatch.from_graphs` on the same
    graphs; the returned structure equals direct recomputation
    (``build_ego_networks`` / ``normalize_edges``) on that batch, without
    running BFS or normalisation on the collated arrays.
    """
    if len(graphs) != len(structures):
        raise ValueError("one structure per graph required")
    batch = GraphBatch.from_graphs(graphs, y=y)
    offsets = batch.node_offsets()
    n = batch.num_nodes
    egos = compose_ego_networks([s.egos for s in structures], offsets, n)
    if structures[0].neighbors is structures[0].egos:
        neighbors = egos
    else:
        neighbors = compose_ego_networks([s.neighbors for s in structures],
                                         offsets, n)
    loops = np.arange(n, dtype=np.int64)
    norm_edge_index = np.concatenate(
        [batch.edge_index, np.stack([loops, loops])], axis=1)
    norm_edge_weight = np.concatenate(
        [s.norm_weight for s in structures]
        + [s.loop_weight for s in structures])
    return batch, BatchStructure(egos=egos, neighbors=neighbors,
                                 norm_edge_index=norm_edge_index,
                                 norm_edge_weight=norm_edge_weight)


class DatasetStructures:
    """Per-graph precomputation + collated-batch cache for a graph list.

    Parameters
    ----------
    graphs:
        The dataset's member graphs (treated as immutable, like every
        structural array in this library).
    radius:
        Ego-network radius λ of the consuming model.  ``None`` disables
        structure composition — :meth:`batch` then returns plain collated
        batches (still cached by chunk), which is what non-AdamGNN
        baselines need.
    labels:
        Optional per-graph label array; chunk labels become a fancy-index
        slice instead of a per-graph Python loop.
    capacity:
        Collated-batch LRU bound (see :class:`BatchStructureCache`).
    dtype:
        Optional compute precision.  Member graphs are cast **once** here
        (via :meth:`Graph.astype`) so every downstream array — collated
        features, composed normalised weights, cached scatter matrices —
        is stored in compute precision instead of being re-cast per batch
        per epoch.  ``None`` keeps the graphs' own dtype (float64 for all
        bundled loaders).
    """

    def __init__(self, graphs: Sequence[Graph],
                 radius: Optional[int] = None,
                 labels: Optional[np.ndarray] = None,
                 capacity: int = DEFAULT_BATCH_CAPACITY,
                 dtype=None):
        if dtype is None:
            self.graphs = list(graphs)
        else:
            self.graphs = [g.astype(dtype) for g in graphs]
        self.radius = radius
        self.labels = None if labels is None else np.asarray(labels)
        self._per_graph: List[Optional[GraphStructure]] = \
            [None] * len(self.graphs)
        self.batch_cache = BatchStructureCache(self._build,
                                               capacity=capacity)

    def structure(self, gid: int) -> GraphStructure:
        """Graph ``gid``'s precomputed structure (built on first use)."""
        if self.radius is None:
            raise ValueError("structure composition disabled (radius=None)")
        out = self._per_graph[gid]
        if out is None:
            out = precompute_graph_structure(self.graphs[gid],
                                             radius=self.radius)
            self._per_graph[gid] = out
        return out

    def batch(self, chunk: np.ndarray,
              ) -> Tuple[GraphBatch, Optional[BatchStructure]]:
        """Collated batch (and composed structure) for an index chunk."""
        return self.batch_cache.get(chunk)

    def _build(self, chunk: np.ndarray,
               ) -> Tuple[GraphBatch, Optional[BatchStructure]]:
        graphs = [self.graphs[int(i)] for i in chunk]
        y = None if self.labels is None else self.labels[chunk]
        if self.radius is None:
            return GraphBatch.from_graphs(graphs, y=y), None
        structures = [self.structure(int(i)) for i in chunk]
        return compose_batch(graphs, structures, y=y)

    def stats(self) -> dict:
        """Batch-cache counters plus per-graph precompute coverage."""
        out = self.batch_cache.stats()
        out["graphs_precomputed"] = sum(
            s is not None for s in self._per_graph)
        out["graphs_total"] = len(self.graphs)
        return out
