"""The serving-side forward engine.

A :class:`Predictor` owns everything a deployed model needs per request:
the grad-mode switch, a workspace arena per served batch, and the
structure pipeline that collates dataset chunks into cached
:class:`~repro.graph.GraphBatch` objects.

Arena keying
------------
Workspace slots replay correctly only when the kernel-call sequence — and
with it every intermediate shape — repeats exactly.  Shapes inside an
AdamGNN forward depend on the *data* (ego selection keeps a
batch-dependent number of hyper-nodes), not just on the batch's outer
dimensions, so arenas are keyed by the identity of the batch object
itself, with the entry pinning the batch so the key can never alias a
recycled object (the same contract as every identity-keyed cache in this
library).  Served batches are stable objects in practice: the
:class:`~repro.core.DatasetStructures` pipeline returns the cached
collation for a repeated chunk, which is what makes the steady state
allocation-free.  A batch object never seen before simply pays one
capture pass.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..core import AdamGNNGraphClassifier, AdamGNNOutput, DatasetStructures
from ..datasets import GraphDataset
from ..graph import GraphBatch
from ..nn import Module
from ..tensor import (Tensor, Workspace, default_dtype, no_grad,
                      resolve_dtype, use_workspace)

#: Default bound on live arenas; least-recently-served batches are dropped
#: beyond it.  Each arena holds one forward's worth of intermediates, so
#: this also bounds the engine's resident buffer memory.
DEFAULT_MAX_ARENAS = 256


class Predictor:
    """Grad-free inference engine for a trained model.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.Module`.  Graph-classification models are
        served through :meth:`predict_batch` / :meth:`predict`; node-level
        models (plain ``model(x, edge_index, edge_weight)`` signature)
        through :meth:`predict_nodes`.
    dtype:
        Serving precision.  Defaults to the model's own parameter dtype
        (i.e. whatever precision it was trained at).
    max_arenas:
        LRU bound on per-batch workspace arenas.

    The model is switched to eval mode once at construction; every
    forward runs under ``no_grad()`` and writes its intermediates into the
    batch's arena.  Returned arrays are **copies** — arena slots are
    recycled on the next forward.

    **Frozen-model contract.**  Arenas capture not only buffer shapes but
    the batch's coarsening plan (pooled-level ego-networks, the
    ego-selection outcome, the detached connectivity product) — pure
    functions of the batch while the weights stay fixed, recomputed by
    every training-mode forward because there they track the moving
    fitness scores.  If you mutate the model's parameters, call
    :meth:`invalidate` so the plans are re-captured.
    """

    def __init__(self, model: Module, dtype=None,
                 max_arenas: int = DEFAULT_MAX_ARENAS):
        params = model.parameters()
        if dtype is None:
            dtype = params[0].data.dtype if params else np.float64
        self.dtype = resolve_dtype(dtype)
        self.model = model.eval().astype(self.dtype)
        self.max_arenas = int(max_arenas)
        if self.max_arenas < 1:
            # At zero the LRU below would evict the entry it just
            # inserted, un-pinning key objects whose Workspace is still in
            # use — the exact recycled-id() aliasing hazard pinning exists
            # to rule out.
            raise ValueError(
                f"max_arenas must be >= 1, got {max_arenas!r}")
        #: id(key objects) → (pinned key objects, Workspace)
        self._arenas: "OrderedDict[Tuple[int, ...], Tuple[Tuple, Workspace]]" \
            = OrderedDict()
        #: id(dataset) → (weakref to the dataset, DatasetStructures).
        #: Weakly keyed: the entry dies with the dataset (the weakref
        #: callback prunes it), so serving never pins a retired dataset's
        #: graphs in memory.  ``GraphDataset`` is an eq-comparing dataclass
        #: (unhashable), hence id keys + a liveness check on lookup rather
        #: than a WeakKeyDictionary.
        self._structures: Dict[int, Tuple["weakref.ref[GraphDataset]",
                                          DatasetStructures]] = {}

    # ------------------------------------------------------------------
    # Arena management
    # ------------------------------------------------------------------
    def _arena_for(self, key_objects: Tuple[Any, ...]) -> Workspace:
        key = tuple(id(obj) for obj in key_objects)
        entry = self._arenas.get(key)
        if entry is not None:
            self._arenas.move_to_end(key)
            return entry[1]
        workspace = Workspace(capture_structures=True)
        # Evict *before* inserting: popping after could (at max_arenas
        # bounds) drop the entry just created, whose workspace the caller
        # is about to run a forward in — pinned key objects must outlive
        # every forward that replays against them.
        while len(self._arenas) >= self.max_arenas:
            self._arenas.popitem(last=False)
        # Pinning the key objects keeps the id-based key sound for the
        # lifetime of the entry.
        self._arenas[key] = (key_objects, workspace)
        return workspace

    def invalidate(self) -> None:
        """Drop every captured plan, buffer arena, and dataset structure.

        Call after mutating the model's parameters (e.g. fine-tuning or
        an ``astype`` precision change): captured coarsening plans are
        valid only while the weights that produced them stay frozen, and
        cached :class:`DatasetStructures` were cast at the old serving
        dtype.  The serving dtype is re-read from the model so a
        ``model.astype(...)`` followed by ``invalidate()`` serves at the
        model's new precision.  The next serve of each batch pays one
        fresh capture pass.
        """
        self._arenas.clear()
        self._structures.clear()
        params = self.model.parameters()
        if params:
            self.dtype = resolve_dtype(params[0].data.dtype)

    def release_dataset(self, dataset: Optional[GraphDataset] = None) -> None:
        """Drop the cached structures of ``dataset`` (all datasets when
        ``None``) so a retired dataset's graphs can be reclaimed without
        touching the captured arenas of everything else."""
        if dataset is None:
            self._structures.clear()
        else:
            self._structures.pop(id(dataset), None)

    def stats(self) -> dict:
        """Aggregate workspace counters across every live arena.

        ``allocations`` stops moving once every served batch has had its
        capture pass — the steady-state zero-allocation property the
        acceptance benchmark asserts.
        """
        arenas = [ws for _, ws in self._arenas.values()]
        return {
            "arenas": len(arenas),
            "allocations": sum(ws.allocations for ws in arenas),
            "hits": sum(ws.hits for ws in arenas),
            "slots": sum(ws.num_slots for ws in arenas),
            "nbytes": sum(ws.nbytes for ws in arenas),
            "captured_structures": sum(
                len(ws._plan) for ws in arenas),
            "structure_hits": sum(ws.structure_hits for ws in arenas),
        }

    @property
    def allocations(self) -> int:
        """Total buffers ever allocated on behalf of this engine."""
        return sum(ws.allocations for _, ws in self._arenas.values())

    # ------------------------------------------------------------------
    # Graph classification
    # ------------------------------------------------------------------
    def predict_batch(self, batch: GraphBatch,
                      structure=None) -> np.ndarray:
        """``(num_graphs, num_classes)`` logits for one collated batch.

        The returned array is a copy; the forward's intermediates live in
        the batch's arena and are recycled on its next serve.
        """
        workspace = self._arena_for((batch,) if structure is None
                                    else (batch, structure))
        with default_dtype(self.dtype), no_grad(), use_workspace(workspace):
            logits, _ = self._forward_batch(batch, structure)
        return logits.data.copy()

    def _forward_batch(self, batch: GraphBatch, structure):
        if isinstance(self.model, AdamGNNGraphClassifier):
            return self.model(Tensor(batch.x), batch.edge_index,
                              batch.edge_weight, batch.batch,
                              batch.num_graphs, structure=structure)
        return self.model(batch)

    def _structures_for(self, dataset: GraphDataset) -> DatasetStructures:
        key = id(dataset)
        entry = self._structures.get(key)
        # The liveness check guards the id key against the (tiny) window
        # between a dataset's death and its weakref callback running.
        if entry is not None and entry[0]() is dataset:
            return entry[1]
        radius = (self.model.encoder.radius
                  if isinstance(self.model, AdamGNNGraphClassifier)
                  else None)
        structures = DatasetStructures(
            dataset.graphs, radius=radius, labels=dataset.label_array,
            dtype=self.dtype)
        selfref = weakref.ref(self)

        def _prune(_ref, key=key, selfref=selfref):
            owner = selfref()
            if owner is not None:
                owner._structures.pop(key, None)

        self._structures[key] = (weakref.ref(dataset, _prune), structures)
        return structures

    def predict(self, dataset: GraphDataset, index: np.ndarray,
                batch_size: int = 32) -> np.ndarray:
        """Predicted class labels for the graphs selected by ``index``."""
        structures = self._structures_for(dataset)
        index = np.asarray(index, dtype=np.int64)
        labels = []
        for lo in range(0, index.shape[0], batch_size):
            chunk = index[lo:lo + batch_size]
            if not chunk.size:
                continue
            batch, structure = structures.batch(chunk)
            logits = self.predict_batch(batch, structure)
            labels.append(logits.argmax(axis=-1))
        if not labels:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(labels)

    def evaluate_accuracy(self, dataset: GraphDataset, index: np.ndarray,
                          batch_size: int = 32) -> float:
        """Accuracy over ``index`` — the serving twin of
        ``GraphClassificationTrainer.evaluate`` (identical logits)."""
        index = np.asarray(index, dtype=np.int64)
        if not index.size:
            return 0.0
        predicted = self.predict(dataset, index, batch_size=batch_size)
        return float((predicted == dataset.labels(index)).mean())

    # ------------------------------------------------------------------
    # Node-level models
    # ------------------------------------------------------------------
    def predict_nodes(self, x: np.ndarray, edge_index: np.ndarray,
                      edge_weight: Optional[np.ndarray] = None,
                      ) -> np.ndarray:
        """Per-node output for a ``model(x, edge_index, edge_weight)``
        forward (node classification logits or link-prediction
        embeddings), as a copied array.

        The arena is keyed by the identity of the input arrays — a
        full-batch serving loop reuses the same graph arrays each call,
        which is exactly the steady state the workspace rewards.
        """
        key = ((x, edge_index) if edge_weight is None
               else (x, edge_index, edge_weight))
        workspace = self._arena_for(key)
        with default_dtype(self.dtype), no_grad(), use_workspace(workspace):
            out = self.model(Tensor(x, dtype=self.dtype), edge_index,
                             edge_weight)
        if isinstance(out, tuple):
            out = out[0]
        if isinstance(out, AdamGNNOutput):
            out = out.h
        return out.data.copy()
