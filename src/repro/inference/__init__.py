"""Grad-free serving engine: no-grad forwards with workspace reuse.

Training and serving want different things from the same forward pass.
Training builds an autograd tape; serving runs the identical arithmetic
but needs latency — no parent tracking, no ``_backward`` closures, and no
fresh heap allocation per intermediate.  This subpackage provides the
serving side:

:class:`Predictor`
    Wraps a trained model.  Forwards run under
    :func:`~repro.tensor.no_grad` with a per-batch
    :class:`~repro.tensor.Workspace` arena, so the first forward over a
    batch captures the kernel-call plan (and allocates its buffers) and
    every repeat replays it allocation-free.  Logits are bitwise identical
    to the training-mode forward.
"""

from .predictor import Predictor

__all__ = ["Predictor"]
