"""Finite-difference gradient checking for the autograd engine.

Used throughout ``tests/tensor`` to certify every differentiable op against
central finite differences — the same guarantee ``torch.autograd.gradcheck``
gives the reference implementation.

Tolerances are dtype-aware: float64 inputs get the classic tight settings,
float32 inputs get scaled ``eps``/``atol``/``rtol`` (a float32 forward pass
carries ~1e-7 relative noise, so the perturbation must be large enough to
rise above it and the comparison loose enough to absorb it).  The objective
is always reduced in float64, and the divisor uses the *actual* perturbation
``(x+eps)-(x-eps)`` as represented in the input's dtype, not the nominal
``2·eps`` — at float32 the two differ enough to matter.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from .tensor import Tensor

#: Per-dtype finite-difference settings: (eps, atol, rtol).
GRADCHECK_TOLERANCES: Dict[np.dtype, Tuple[float, float, float]] = {
    np.dtype(np.float64): (1e-6, 1e-5, 1e-4),
    np.dtype(np.float32): (1e-2, 1e-2, 1e-2),
}


def tolerances_for(dtype) -> Tuple[float, float, float]:
    """``(eps, atol, rtol)`` for gradient checks at ``dtype``."""
    return GRADCHECK_TOLERANCES[np.dtype(dtype)]


def numeric_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                     wrt: int, eps: Optional[float] = None) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function mapping tensors to a tensor (any shape; the implicit
        objective is the sum of its elements).
    inputs:
        Input tensors; only ``inputs[wrt]`` is perturbed.
    wrt:
        Index of the input to differentiate with respect to.
    eps:
        Perturbation half-width; defaults to the dtype-appropriate value
        from :data:`GRADCHECK_TOLERANCES`.
    """
    target = inputs[wrt]
    if eps is None:
        eps = tolerances_for(target.data.dtype)[0]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = float(flat[i])
        plus = float(fn(*inputs).data.sum(dtype=np.float64))
        flat[i] = original - eps
        lo = float(flat[i])
        minus = float(fn(*inputs).data.sum(dtype=np.float64))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (hi - lo)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    eps: Optional[float] = None, atol: Optional[float] = None,
                    rtol: Optional[float] = None) -> Tuple[bool, str]:
    """Compare autograd gradients of ``sum(fn(*inputs))`` to finite differences.

    Returns ``(ok, message)`` where ``message`` describes the first mismatch
    (empty when ``ok``).  All inputs with ``requires_grad`` are checked.
    Unspecified tolerances resolve per checked input from
    :data:`GRADCHECK_TOLERANCES`, so a float32 graph is automatically held
    to float32-appropriate bounds.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for idx, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        d_eps, d_atol, d_rtol = tolerances_for(t.data.dtype)
        use_eps = d_eps if eps is None else eps
        use_atol = d_atol if atol is None else atol
        use_rtol = d_rtol if rtol is None else rtol
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numeric_gradient(fn, inputs, idx, eps=use_eps)
        if not np.allclose(analytic, numeric, atol=use_atol, rtol=use_rtol):
            worst = np.abs(analytic - numeric).max()
            return False, (f"input {idx} ({t.data.dtype}): max abs error "
                           f"{worst:.3e} "
                           f"(atol={use_atol}, rtol={use_rtol})\n"
                           f"analytic=\n{analytic}\n"
                           f"numeric=\n{numeric}")
    return True, ""


def assert_gradients_close(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                           eps: Optional[float] = None,
                           atol: Optional[float] = None,
                           rtol: Optional[float] = None) -> None:
    """Raise ``AssertionError`` when autograd and numeric gradients disagree."""
    ok, message = check_gradients(fn, inputs, eps=eps, atol=atol, rtol=rtol)
    if not ok:
        raise AssertionError(f"gradient check failed: {message}")
