"""Finite-difference gradient checking for the autograd engine.

Used throughout ``tests/tensor`` to certify every differentiable op against
central finite differences — the same guarantee ``torch.autograd.gradcheck``
gives the reference implementation.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from .tensor import Tensor


def numeric_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                     wrt: int, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function mapping tensors to a tensor (any shape; the implicit
        objective is the sum of its elements).
    inputs:
        Input tensors; only ``inputs[wrt]`` is perturbed.
    wrt:
        Index of the input to differentiate with respect to.
    eps:
        Perturbation half-width.
    """
    target = inputs[wrt]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    eps: float = 1e-6, atol: float = 1e-5,
                    rtol: float = 1e-4) -> Tuple[bool, str]:
    """Compare autograd gradients of ``sum(fn(*inputs))`` to finite differences.

    Returns ``(ok, message)`` where ``message`` describes the first mismatch
    (empty when ``ok``).  All inputs with ``requires_grad`` are checked.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for idx, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numeric_gradient(fn, inputs, idx, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            return False, (f"input {idx}: max abs error {worst:.3e} "
                           f"(atol={atol}, rtol={rtol})\nanalytic=\n{analytic}\n"
                           f"numeric=\n{numeric}")
    return True, ""


def assert_gradients_close(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                           eps: float = 1e-6, atol: float = 1e-5,
                           rtol: float = 1e-4) -> None:
    """Raise ``AssertionError`` when autograd and numeric gradients disagree."""
    ok, message = check_gradients(fn, inputs, eps=eps, atol=atol, rtol=rtol)
    if not ok:
        raise AssertionError(f"gradient check failed: {message}")
