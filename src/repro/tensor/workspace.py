"""Preallocated out-buffer arena for grad-free inference forwards.

NumPy hands every allocation of ~128 KiB or more to ``mmap``, so a fresh
intermediate in a steady-state serving loop pays page-fault zeroing on every
single forward.  A :class:`Workspace` removes that cost: the hot kernels
(``affine``, ``leaky_relu_project``, segment reductions, SpMV, the flyback
combine) request their output buffers through the active workspace instead
of calling ``np.empty`` directly, and the workspace hands back the *same*
buffers on every repeated forward.

How the "plan capture" works
----------------------------
A model's forward is a deterministic sequence of kernel calls: for a fixed
model and a fixed input batch, call *i* always produces the same output
shape and dtype.  The workspace exploits this with a slot cursor — it
records the buffer sequence of the first forward (the capture pass, which
allocates) and replays it on every subsequent forward over the same batch
(zero allocations, ``hits`` increments instead).  :meth:`Workspace.begin`
rewinds the cursor; the :class:`~repro.inference.Predictor` calls it before
each forward.  A shape or dtype mismatch at a slot (a *different* batch
replayed against this arena) is not an error — the slot is reallocated and
the ``allocations`` counter records it, which is exactly what the zero-alloc
acceptance assertion inspects.

Structural plan capture (opt-in)
--------------------------------
With ``Workspace(capture_structures=True)`` the arena additionally records
*structural* stage results through :meth:`Workspace.captured` — the
coarsening hierarchy AdamGNN derives per batch (pooled-level ego-network
pair lists, the ego-selection outcome, the detached connectivity product).
For a **frozen** model these are pure functions of the batch, so the
capture pass computes them once and every replay returns the recorded
objects without recomputation — the serving analogue of graph capture.
The stability of the recorded arrays is itself a speedup: every
identity-keyed cache downstream (segment plans, Â adjacencies) hits
instead of rotating.  Builders run with the arena *deactivated* so a
captured object can never alias a recyclable buffer slot.  This mode is
only sound when one arena serves one fixed (model, batch) pair — the
:class:`~repro.inference.Predictor` guarantees that by keying arenas on
batch identity and documenting the frozen-model contract (its
``invalidate()`` drops captured plans after a parameter update).

Safety rules
------------
* A workspace may only be activated under :func:`~repro.tensor.no_grad`:
  training-mode ``_backward`` closures capture forward intermediates by
  reference, and recycling those buffers on the next forward would corrupt
  the tape.  :func:`use_workspace` enforces this at entry.
* Only *float compute* buffers go through the workspace.  Integer index
  arrays must never be workspace-recycled: the segment-plan and adjacency
  caches key on array identity, and a recycled buffer with the same id but
  different contents would poison them.
* Tensors returned to the caller alias arena slots; callers that keep
  results across forwards must copy (the Predictor copies its logits out).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ._grad_mode import grad_enabled

__all__ = ["Workspace", "use_workspace", "use_training_workspace",
           "active_workspace", "training_arena_active",
           "ws_empty", "ws_zeros", "ws_out", "ws_captured"]


class Workspace:
    """A slot-cursor arena of reusable output buffers.

    Buffers are handed out in call order; slot *i* of forward *n* is the
    same ndarray as slot *i* of forward *n−1* whenever shape and dtype
    match.  Counters:

    ``allocations``
        Number of ``np.empty`` calls ever made on behalf of this arena
        (capture pass + any shape-drift reallocations).  Steady state over
        a fixed batch means this number stops moving.
    ``hits``
        Number of requests served by reusing an existing slot buffer.
    """

    __slots__ = ("_slots", "_cursor", "_buckets", "_bucket_cursor",
                 "allocations", "hits",
                 "capture_structures", "_plan", "_plan_cursor",
                 "structure_hits", "generation", "training")

    def __init__(self, capture_structures: bool = False,
                 training: bool = False) -> None:
        self._slots: List[np.ndarray] = []
        self._cursor: int = 0
        #: training-arena storage: size-class buckets (see take()) with a
        #: per-generation cursor into each bucket's buffer list.
        self._buckets: dict = {}
        self._bucket_cursor: dict = {}
        self.allocations: int = 0
        self.hits: int = 0
        #: forwards started on this arena; each begin() releases every slot
        #: of the previous generation (the sanitizer poisons them then).
        self.generation: int = 0
        #: record/replay structural stage results (see module docstring);
        #: only sound for a frozen model served one fixed batch per arena.
        self.capture_structures = bool(capture_structures)
        #: grad-enabled generation: one generation spans one whole training
        #: step (forward + loss + backward), entered via
        #: :func:`use_training_workspace`.  The slot cursor never rewinds
        #: within a step, so every ``take()`` — forward intermediates *and*
        #: gradient buffers — gets a distinct slot, and backward closures
        #: from step *n* are dropped by the tape before step *n+1* begins
        #: a new generation (replint RL005 polices retention).
        self.training = bool(training)
        self._plan: List = []
        self._plan_cursor: int = 0
        self.structure_hits: int = 0

    def begin(self) -> None:
        """Rewind the slot cursors — call before each forward/step."""
        self._cursor = 0
        if self._bucket_cursor:
            self._bucket_cursor.clear()
        self._plan_cursor = 0
        self.generation += 1

    def captured(self, builder):
        """Record ``builder()``'s result on the capture pass, replay after.

        Structural twin of :meth:`take`: stage *i* of forward *n* returns
        the exact objects stage *i* of the capture pass produced.  With
        ``capture_structures`` off this is a transparent passthrough.  The
        builder runs with the arena deactivated so its result can never
        hold a buffer slot that the next forward would recycle.
        """
        if not self.capture_structures:
            return builder()
        i = self._plan_cursor
        self._plan_cursor = i + 1
        if i < len(self._plan):
            self.structure_hits += 1
            return self._plan[i]
        previous = _state.active
        _state.active = None
        try:
            value = builder()
        finally:
            _state.active = previous
        self._plan.append(value)
        return value

    #: training-arena service floor, in *elements*: requests below it go
    #: straight to ``np.empty``.  glibc malloc serves small repeated
    #: allocations from its free lists with no page faulting, so routing
    #: them through the slot machinery costs Python-level bookkeeping per
    #: call and saves nothing — measured on PROTEINS, ~500 of the ~800
    #: per-epoch arena requests were under 64 KiB while carrying under a
    #: tenth of the bytes.  The arena keeps the large compute/gradient
    #: buffers, which is where kernel page faulting actually lived.
    SMALL_ELEMS = 16384

    def take(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Return the next slot buffer, (re)allocating only on mismatch.

        Inference arenas match slots *exactly* (one arena serves one fixed
        batch, so shapes never move and the buffer itself is returned).
        Training arenas match by **size class**: AdamGNN's pooled-level
        sizes wobble per step as the learned selection moves, and both an
        exact-shape arena and a strict call-order arena churn under that —
        the latter because one request drifting across the
        :data:`SMALL_ELEMS` floor (or between sizes) shifts every
        subsequent cursor position onto a slot of the wrong capacity.
        Instead each request is bucketed by ``(dtype,
        ceil(log2(need * 9/8)))`` — power-of-two capacity classes with the
        boundary shifted ~12.5% below each power of two, so requests sized
        *at* a power of two (the common case: feature dims are 64/196)
        keep a headroom margin and small drift stays inside the class.
        Buffers within a bucket are handed out in per-generation arrival
        order as reshaped prefix views; a size wobbling across a class
        boundary populates both classes once and then stops allocating —
        the ``allocations`` counter settles even though shapes drift.
        Small requests below :data:`SMALL_ELEMS` go straight to
        ``np.empty`` (see its comment) and cannot perturb the buckets.
        """
        if self.training:
            need = 1
            for dim in shape:
                need *= dim
            if need < Workspace.SMALL_ELEMS:
                return np.empty(shape, dtype=dtype)
            key = (np.dtype(dtype).char,
                   (need + (need >> 3) + 7).bit_length())
            cursors = self._bucket_cursor
            i = cursors.get(key, 0)
            cursors[key] = i + 1
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = []
            if i < len(bucket):
                self.hits += 1
                return bucket[i][:need].reshape(shape)
            self.allocations += 1
            buf = np.empty(1 << key[1], dtype=dtype)
            bucket.append(buf)
            return buf[:need].reshape(shape)
        shape = tuple(shape)
        dtype = np.dtype(dtype)
        i = self._cursor
        self._cursor = i + 1
        if i < len(self._slots):
            buf = self._slots[i]
            if buf.shape == shape and buf.dtype == dtype:
                self.hits += 1
                return buf
            self.allocations += 1
            buf = np.empty(shape, dtype=dtype)
            self._slots[i] = buf
            return buf
        self.allocations += 1
        buf = np.empty(shape, dtype=dtype)
        self._slots.append(buf)
        return buf

    def _buffers(self) -> Iterator[np.ndarray]:
        """Every live buffer: inference slots plus training buckets."""
        yield from self._slots
        for bucket in self._buckets.values():
            yield from bucket

    @property
    def num_slots(self) -> int:
        return len(self._slots) + sum(len(b)
                                      for b in self._buckets.values())

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers())

    def stats(self) -> dict:
        return {"allocations": self.allocations, "hits": self.hits,
                "slots": self.num_slots, "nbytes": self.nbytes,
                "captured_structures": len(self._plan),
                "structure_hits": self.structure_hits}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Workspace(slots={self.num_slots}, "
                f"allocations={self.allocations}, hits={self.hits}, "
                f"nbytes={self.nbytes})")


class _WorkspaceState(threading.local):
    """Per-thread active workspace.  Thread-local so each serving worker
    (see :mod:`repro.serving`) replays its own arena: one worker's slot
    cursor must never hand buffers to a forward running on another
    thread.  Fresh threads start with no workspace active."""

    active: Optional[Workspace] = None


_state = _WorkspaceState()


def active_workspace() -> Optional[Workspace]:
    """The calling thread's active workspace (``None`` outside serving)."""
    return _state.active


@contextmanager
def use_workspace(workspace: Workspace) -> Iterator[Workspace]:
    """Route kernel output buffers through ``workspace``.

    Requires gradient mode to be off (see module docstring); rewinds the
    slot cursor on entry so each activation is one forward's replay.
    Re-entrant activations nest (the inner workspace wins), which keeps a
    Predictor-in-Predictor composition from silently interleaving slots.
    """
    if grad_enabled():
        raise RuntimeError(
            "use_workspace() requires no_grad(): backward closures capture "
            "forward buffers by reference, and recycling them would corrupt "
            "the autograd tape")
    previous = _state.active
    workspace.begin()
    _state.active = workspace
    try:
        yield workspace
    finally:
        _state.active = previous


@contextmanager
def use_training_workspace(workspace: Workspace) -> Iterator[Workspace]:
    """Route one *training step* (forward + loss + backward) through an arena.

    The grad-enabled counterpart of :func:`use_workspace`: the no-grad
    requirement is deliberately waived because the aliasing hazard it
    guards against — backward closures reading recycled buffers — is
    resolved differently here.  One activation is one generation spanning
    the whole step; the cursor hands out a fresh slot for every request,
    so forward intermediates and gradient buffers never alias within the
    step, and the step's closures are all consumed (and dropped by the
    tape) before the next activation recycles anything.  The workspace
    must have been created with ``training=True``.
    """
    if not workspace.training:
        raise RuntimeError(
            "use_training_workspace() needs a Workspace(training=True); "
            "inference arenas must go through use_workspace()")
    previous = _state.active
    workspace.begin()
    _state.active = workspace
    try:
        yield workspace
    finally:
        _state.active = previous


def training_arena_active() -> bool:
    """Whether the calling thread's active workspace is a training arena.

    Call sites that must behave differently under training capture — e.g.
    per-step recomputation of value-carrying stages that the inference
    path is allowed to freeze — branch on this.
    """
    ws = _state.active
    return ws is not None and ws.training


def ws_empty(shape: Tuple[int, ...], dtype) -> np.ndarray:
    """``np.empty`` that comes from the active workspace when there is one."""
    ws = _state.active
    if ws is None:
        return np.empty(shape, dtype=dtype)
    return ws.take(shape, dtype)


def ws_zeros(shape: Tuple[int, ...], dtype) -> np.ndarray:
    """``np.zeros`` that reuses (and re-zeroes) a workspace slot."""
    ws = _state.active
    if ws is None:
        return np.zeros(shape, dtype=dtype)
    buf = ws.take(shape, dtype)
    buf.fill(0)
    return buf


def ws_captured(builder):
    """Route a structural stage through the active workspace's plan.

    Transparent (just calls ``builder()``) when no workspace is active or
    the active one was not created with ``capture_structures=True`` — the
    training path and plain no-grad evaluation always recompute.  Training
    arenas are created *without* structure capture on purpose: the stages
    behind this helper (ego selection, assignment assembly, connectivity)
    track the learned fitness and must recompute every step.
    """
    ws = _state.active
    if ws is None:
        return builder()
    return ws.captured(builder)


def ws_out(shape: Tuple[int, ...], dtype) -> Optional[np.ndarray]:
    """Workspace slot for an ``out=`` argument, or ``None`` when inactive.

    ``None`` makes NumPy ufuncs/``matmul`` allocate exactly as the
    training-mode code does, so call sites stay one-liners:
    ``np.matmul(a, b, out=ws_out(shape, dt))``.
    """
    ws = _state.active
    if ws is None:
        return None
    return ws.take(shape, dtype)
