"""Segment (scatter/gather) operations — the message-passing primitives.

A GNN layer in the PyG style reduces to three steps: *gather* node states
onto edges, *transform* the edge messages, and *segment-reduce* messages back
to nodes.  The gather step is :func:`repro.tensor.ops.gather_rows`; this
module provides the reductions.

``segment_ids`` are int64 arrays assigning each row of ``values`` to an
output segment; segments need not be sorted or contiguous.  Empty segments
yield zeros (sum/mean) or zeros (max, by convention, so that isolated nodes
keep a well-defined state).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .ops import exp, gather_rows
from .tensor import DEFAULT_DTYPE, ArrayLike, Tensor


def _check_ids(segment_ids: np.ndarray, num_segments: int, n_rows: int) -> np.ndarray:
    ids = np.asarray(segment_ids, dtype=np.int64)
    if ids.ndim != 1:
        raise ValueError(f"segment_ids must be 1-D, got shape {ids.shape}")
    if ids.shape[0] != n_rows:
        raise ValueError(f"segment_ids length {ids.shape[0]} does not match "
                         f"values rows {n_rows}")
    if ids.size and (ids.min() < 0 or ids.max() >= num_segments):
        raise ValueError(f"segment ids must lie in [0, {num_segments}), got "
                         f"range [{ids.min()}, {ids.max()}]")
    return ids


def segment_sum(values: ArrayLike, segment_ids: np.ndarray,
                num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` output rows.

    ``out[s] = Σ_{i : segment_ids[i] == s} values[i]``.
    """
    values = values if isinstance(values, Tensor) else Tensor(values)
    ids = _check_ids(segment_ids, num_segments, values.data.shape[0])
    out_shape = (num_segments,) + values.data.shape[1:]
    out_data = np.zeros(out_shape, dtype=DEFAULT_DTYPE)
    np.add.at(out_data, ids, values.data)

    def backward(grad: np.ndarray) -> None:
        values._accumulate(grad[ids])

    return values._make_child(out_data, (values,), backward)


def segment_count(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of rows in each segment, as a plain array (no gradient)."""
    ids = np.asarray(segment_ids, dtype=np.int64)
    return np.bincount(ids, minlength=num_segments).astype(DEFAULT_DTYPE)


def segment_mean(values: ArrayLike, segment_ids: np.ndarray,
                 num_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments produce zeros."""
    totals = segment_sum(values, segment_ids, num_segments)
    counts = np.maximum(segment_count(segment_ids, num_segments), 1.0)
    shape = (num_segments,) + (1,) * (totals.data.ndim - 1)
    return totals * Tensor(1.0 / counts.reshape(shape))


def segment_max(values: ArrayLike, segment_ids: np.ndarray,
                num_segments: int) -> Tensor:
    """Per-segment maximum; empty segments produce zeros.

    Gradient flows to every element attaining the segment maximum, split
    evenly among ties (the same subgradient convention as ``Tensor.max``).
    """
    values = values if isinstance(values, Tensor) else Tensor(values)
    ids = _check_ids(segment_ids, num_segments, values.data.shape[0])
    out_shape = (num_segments,) + values.data.shape[1:]
    out_data = np.full(out_shape, -np.inf, dtype=DEFAULT_DTYPE)
    np.maximum.at(out_data, ids, values.data)
    empty = ~np.isfinite(out_data)
    out_data[empty] = 0.0

    def backward(grad: np.ndarray) -> None:
        winners = (values.data == out_data[ids]).astype(DEFAULT_DTYPE)
        # Split gradient among ties within each segment.
        tie_counts = np.zeros(out_shape, dtype=DEFAULT_DTYPE)
        np.add.at(tie_counts, ids, winners)
        tie_counts = np.maximum(tie_counts, 1.0)
        values._accumulate(winners * grad[ids] / tie_counts[ids])

    return values._make_child(out_data, (values,), backward)


def segment_softmax(scores: ArrayLike, segment_ids: np.ndarray,
                    num_segments: int) -> Tensor:
    """Softmax over the entries of each segment.

    This is the attention-normalisation step of GAT-style layers and of the
    fitness score f_s in Eq. 2 of the paper: scores on edges incident to the
    same target node are normalised to a probability distribution.

    Built compositionally from :func:`segment_max`, :func:`exp`,
    :func:`segment_sum` and :func:`gather_rows`, so the backward pass comes
    from autograd and is exact.
    """
    scores = scores if isinstance(scores, Tensor) else Tensor(scores)
    ids = _check_ids(segment_ids, num_segments, scores.data.shape[0])
    # Stabilise with the (non-differentiable) per-segment max: subtracting a
    # constant per segment does not change the softmax value or gradient.
    seg_peak = np.full((num_segments,) + scores.data.shape[1:], -np.inf,
                       dtype=DEFAULT_DTYPE)
    np.maximum.at(seg_peak, ids, scores.data)
    seg_peak[~np.isfinite(seg_peak)] = 0.0
    shifted = scores - Tensor(seg_peak[ids])
    numer = exp(shifted)
    denom = segment_sum(numer, ids, num_segments)
    # Guard empty segments (no entries reference them, value is irrelevant).
    denom_safe = denom + Tensor((denom.data == 0).astype(DEFAULT_DTYPE))
    return numer / gather_rows(denom_safe, ids)


def segment_normalize(values: ArrayLike, segment_ids: np.ndarray,
                      num_segments: int, eps: float = 1e-12) -> Tensor:
    """Divide each entry by the sum of its segment (L1 normalisation)."""
    values = values if isinstance(values, Tensor) else Tensor(values)
    ids = _check_ids(segment_ids, num_segments, values.data.shape[0])
    totals = segment_sum(values, ids, num_segments)
    totals_safe = totals + eps
    return values / gather_rows(totals_safe, ids)
