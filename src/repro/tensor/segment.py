"""Segment (scatter/gather) operations — the message-passing primitives.

A GNN layer in the PyG style reduces to three steps: *gather* node states
onto edges, *transform* the edge messages, and *segment-reduce* messages back
to nodes.  The gather step is :func:`repro.tensor.ops.gather_rows`; this
module provides the reductions.

``segment_ids`` are int64 arrays assigning each row of ``values`` to an
output segment; segments need not be sorted or contiguous.  Empty segments
yield zeros (sum/mean) or zeros (max, by convention, so that isolated nodes
keep a well-defined state).

Since the Table-4 performance pass, every reduction runs through a
:class:`~repro.tensor._segment_plans.SegmentReductionPlan` — the ids array
is argsorted once, cached by memory identity, and each forward *and*
backward reduction over it is a single ``ufunc.reduceat`` sweep instead of
an unbuffered ``np.add.at`` / ``np.maximum.at`` scatter loop.  The original
scatter-loop kernels are retained (reachable via
:func:`repro.tensor._segment_plans.naive_kernels`) so the test suite can
check the fast paths against the old semantics on identical inputs.
"""

from __future__ import annotations

import numpy as np

from . import _sanitize_state as _san
from . import _segment_plans as _plans
from . import workspace as _ws
from .ops import _gather_rows_data, exp, gather_rows
from .tensor import DEFAULT_DTYPE, ArrayLike, Tensor


def _check_ids(segment_ids: np.ndarray, num_segments: int, n_rows: int) -> np.ndarray:
    ids = np.asarray(segment_ids, dtype=np.int64)
    if ids.ndim != 1:
        raise ValueError(f"segment_ids must be 1-D, got shape {ids.shape}")
    if ids.shape[0] != n_rows:
        raise ValueError(f"segment_ids length {ids.shape[0]} does not match "
                         f"values rows {n_rows}")
    if ids.size and (ids.min() < 0 or ids.max() >= num_segments):
        raise ValueError(f"segment ids must lie in [0, {num_segments}), got "
                         f"range [{ids.min()}, {ids.max()}]")
    return ids


def _naive_segment_sum(data: np.ndarray, ids: np.ndarray,
                       num_segments: int) -> np.ndarray:
    out = np.zeros((num_segments,) + data.shape[1:], dtype=data.dtype)
    np.add.at(out, ids, data)
    return out


def _naive_segment_max(data: np.ndarray, ids: np.ndarray,
                       num_segments: int) -> np.ndarray:
    out = np.full((num_segments,) + data.shape[1:], -np.inf,
                  dtype=data.dtype)
    np.maximum.at(out, ids, data)
    out[~np.isfinite(out)] = 0.0
    return out


def segment_sum(values: ArrayLike, segment_ids: np.ndarray,
                num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` output rows.

    ``out[s] = Σ_{i : segment_ids[i] == s} values[i]``.
    """
    values = values if isinstance(values, Tensor) else Tensor(values)
    ids = _check_ids(segment_ids, num_segments, values.data.shape[0])
    if _san.ENABLED:
        _san.check_segment_inputs("segment_sum", values.data, ids)
    if _plans.fast_kernels_enabled():
        plan = _plans.plan_for(ids, num_segments)
        out_data = plan.sum(values.data)
    else:
        out_data = _naive_segment_sum(values.data, ids, num_segments)

    def backward(grad: np.ndarray) -> None:
        values._accumulate(grad[ids])

    return values._make_child(out_data, (values,), backward)


def segment_count(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of rows in each segment, as a plain array (no gradient)."""
    ids = np.asarray(segment_ids, dtype=np.int64)
    return np.bincount(ids, minlength=num_segments).astype(DEFAULT_DTYPE)


def segment_mean(values: ArrayLike, segment_ids: np.ndarray,
                 num_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments produce zeros."""
    totals = segment_sum(values, segment_ids, num_segments)
    counts = np.maximum(segment_count(segment_ids, num_segments), 1.0)
    shape = (num_segments,) + (1,) * (totals.data.ndim - 1)
    # Reciprocals are formed in float64 (segment_count) and adopt the
    # totals' dtype through _coerce — no silent promotion of a float32 graph.
    return totals * (1.0 / counts.reshape(shape))


def segment_max(values: ArrayLike, segment_ids: np.ndarray,
                num_segments: int) -> Tensor:
    """Per-segment maximum; empty segments produce zeros.

    Gradient flows to every element attaining the segment maximum, split
    evenly among ties (the same subgradient convention as ``Tensor.max``).
    """
    values = values if isinstance(values, Tensor) else Tensor(values)
    ids = _check_ids(segment_ids, num_segments, values.data.shape[0])
    if _san.ENABLED:
        _san.check_segment_inputs("segment_max", values.data, ids)
    fast = _plans.fast_kernels_enabled()
    if fast:
        plan = _plans.plan_for(ids, num_segments)
        out_data = plan.max(values.data)
    else:
        out_data = _naive_segment_max(values.data, ids, num_segments)

    def backward(grad: np.ndarray) -> None:
        winners = (values.data == out_data[ids]).astype(values.data.dtype)
        # Split gradient among ties within each segment.  Dividing at
        # segment granularity keeps the per-row work to one gather and one
        # multiply (num_segments ≪ rows on the readout path).
        if fast:
            tie_counts = plan.sum(winners)
        else:
            tie_counts = _naive_segment_sum(winners, ids, num_segments)
        np.maximum(tie_counts, 1.0, out=tie_counts)
        shared = grad / tie_counts
        winners *= shared[ids]
        values._accumulate(winners)

    return values._make_child(out_data, (values,), backward)


def gather_scale_segment_sum(x: ArrayLike, gather_ids: np.ndarray,
                             scale: ArrayLike, segment_ids: np.ndarray,
                             num_segments: int) -> Tensor:
    """Fused ``segment_sum(x[gather_ids] * scale[:, None], segment_ids)``.

    This is the sparse-matrix product at the heart of unpooling
    (``S @ H``) and of the attention-weighted hyper-node pooling: row ``p``
    of the implicit message matrix is ``scale_p · x[gather_ids_p]``,
    reduced into ``segment_ids_p``.  Both ``x`` and ``scale`` may carry
    gradients.  The compositional spelling builds three graph nodes and
    four ``(P, d)`` temporaries on the backward pass; the fused node does
    the same vector-Jacobian products in two passes.
    """
    x = x if isinstance(x, Tensor) else Tensor(x)
    scale = scale if isinstance(scale, Tensor) else Tensor(scale)
    cols = np.asarray(gather_ids, dtype=np.int64)
    ids = _check_ids(segment_ids, num_segments, cols.shape[0])
    if scale.data.shape != cols.shape:
        raise ValueError(f"scale must be 1-D of length {cols.shape[0]}, "
                         f"got shape {scale.data.shape}")
    if _san.ENABLED:
        _san.check_segment_inputs("gather_scale_segment_sum", x.data, ids)
    if not _plans.fast_kernels_enabled():
        messages = gather_rows(x, cols) * scale.reshape(-1, 1)
        return segment_sum(messages, ids, num_segments)

    gathered = _gather_rows_data(x.data, cols)
    weights = scale.data[:, None]
    plan = _plans.plan_for(ids, num_segments)
    scaled = np.multiply(gathered, weights,
                         out=_ws.ws_out(gathered.shape,
                                        np.result_type(gathered, weights)))
    out_data = plan.sum(scaled)

    def backward(grad: np.ndarray) -> None:
        pulled = np.take(grad, ids, axis=0,
                         out=_ws.ws_out((ids.shape[0],) + grad.shape[1:],
                                        grad.dtype))
        if x.requires_grad:
            vals = np.multiply(pulled, weights,
                               out=_ws.ws_out(pulled.shape,
                                              np.result_type(pulled,
                                                             weights)))
            x._accumulate(_plans.scatter_add_rows(
                vals, cols, x.data.shape[0]))
        if scale.requires_grad:
            scale._accumulate(np.einsum("ij,ij->i", pulled, gathered))

    return x._make_child(out_data, (x, scale), backward)


def segment_softmax(scores: ArrayLike, segment_ids: np.ndarray,
                    num_segments: int) -> Tensor:
    """Softmax over the entries of each segment.

    This is the attention-normalisation step of GAT-style layers and of the
    fitness score f_s in Eq. 2 of the paper: scores on edges incident to the
    same target node are normalised to a probability distribution.

    The fast path is a fused kernel: one plan-based max (stabilisation), one
    exp, one plan-based sum, and an analytic backward
    ``ds = out * (g - Σ_segment g·out)`` — the exact softmax Jacobian-vector
    product, identical to what autograd derives for the compositional form.
    """
    scores = scores if isinstance(scores, Tensor) else Tensor(scores)
    ids = _check_ids(segment_ids, num_segments, scores.data.shape[0])
    if _san.ENABLED:
        _san.check_segment_inputs("segment_softmax", scores.data, ids)
    if not _plans.fast_kernels_enabled():
        return _segment_softmax_reference(scores, ids, num_segments)

    plan = _plans.plan_for(ids, num_segments)
    # Subtracting the per-segment max is a constant shift: it changes
    # neither the value nor the gradient of the softmax.  Each step below
    # reuses its workspace-gathered operand in place when an arena is
    # active; with none active the buffers are fresh, exactly as before.
    peak = plan.max(scores.data)
    shift = _gather_rows_data(peak, ids)
    np.subtract(scores.data, shift, out=shift)
    e = np.exp(shift, out=shift)
    denom = plan.sum(e)
    # Guard empty segments (no entries reference them, value is irrelevant).
    denom[denom == 0.0] = 1.0
    pulled = _gather_rows_data(denom, ids)
    out_data = np.divide(e, pulled, out=pulled)

    def backward(grad: np.ndarray) -> None:
        dot = plan.sum(grad * out_data)
        scores._accumulate(out_data * (grad - dot[ids]))

    return scores._make_child(out_data, (scores,), backward)


def _segment_softmax_reference(scores: Tensor, ids: np.ndarray,
                               num_segments: int) -> Tensor:
    """Original compositional softmax; backward comes from autograd."""
    seg_peak = _naive_segment_max(scores.data, ids, num_segments)
    shifted = scores - Tensor(seg_peak[ids])
    numer = exp(shifted)
    denom = segment_sum(numer, ids, num_segments)
    denom_safe = denom + Tensor((denom.data == 0).astype(denom.data.dtype))
    return numer / gather_rows(denom_safe, ids)


def segment_normalize(values: ArrayLike, segment_ids: np.ndarray,
                      num_segments: int, eps: float = 1e-12) -> Tensor:
    """Divide each entry by the sum of its segment (L1 normalisation)."""
    values = values if isinstance(values, Tensor) else Tensor(values)
    ids = _check_ids(segment_ids, num_segments, values.data.shape[0])
    totals = segment_sum(values, ids, num_segments)
    totals_safe = totals + eps
    return values / gather_rows(totals_safe, ids)
