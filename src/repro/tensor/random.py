"""Seeded randomness helpers shared by the whole library.

Every stochastic component (weight init, dropout, dataset synthesis, data
splits) draws from an explicit ``numpy.random.Generator`` so that each
experiment in the paper reproduction is bit-for-bit repeatable.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Return a PCG64 generator seeded with ``seed``."""
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Uses the generator's bit-stream to seed children, so a single experiment
    seed deterministically fans out to per-component streams.
    """
    seeds = rng.integers(0, 2 ** 63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def draw_uniform(rng: np.random.Generator, low: float, high: float,
                 size, dtype=np.float64) -> np.ndarray:
    """``rng.uniform`` drawn in float64, then cast to ``dtype``.

    Drawing at full precision and casting afterwards means a fixed seed
    produces the *same* values (up to rounding) at every compute dtype —
    the generator consumes an identical bit-stream either way.  Drawing
    natively at float32 would consume different amounts of entropy and
    decouple the float32 and float64 initialisations entirely.
    """
    return rng.uniform(low, high, size=size).astype(dtype, copy=False)


def draw_normal(rng: np.random.Generator, loc: float, scale: float,
                size, dtype=np.float64) -> np.ndarray:
    """``rng.normal`` drawn in float64, then cast to ``dtype`` (see
    :func:`draw_uniform` for why the draw stays float64)."""
    return rng.normal(loc, scale, size=size).astype(dtype, copy=False)
