"""Chunk-parallel execution for the largest fused kernels.

The steady AdamGNN epoch is dense NumPy arithmetic; on a multi-core box
the biggest kernels (``affine``, ``leaky_relu_project``, the 2-D segment
reductions) can run their row/column blocks concurrently because NumPy
releases the GIL inside its C loops.  This module owns that machinery:

* :func:`get_num_workers` / :func:`set_num_workers` — worker policy.
  Defaults to ``REPRO_NUM_WORKERS`` if set, else ``os.cpu_count()``; a
  value of 1 means every kernel stays on the caller's thread.
* :func:`chunk_plan` — split ``n`` rows into contiguous blocks.  The plan
  is a pure function of ``(n, configured workers, threshold)`` — it does
  NOT depend on whether the pool is enabled, so running the same plan
  serially (:func:`serial_execution`) or on the pool yields bitwise
  identical results by construction: the per-block NumPy calls are the
  same either way, only the thread that runs them differs.
* :func:`run_chunked` — execute a per-block function over a plan, on the
  shared pool when parallelism is enabled and on the calling thread
  otherwise.

Bit-for-bit semantics, stated precisely: block boundaries *do* change the
floating-point result of a blocked GEMM relative to the unblocked call
(BLAS is free to reassociate differently per shape), so chunking is part
of the kernel's definition, not a transparent execution detail.  The
reference escape hatch is unchanged: under ``naive_kernels()`` the fused
kernels fall back to their compositional formulations, which never chunk
and therefore reproduce the pre-policy float64 path exactly.
"""

from __future__ import annotations

import atexit
import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

#: Kernels smaller than this many rows (or columns, for column-chunked
#: reductions) never split: pool dispatch costs ~50 µs per block, so tiny
#: blocks lose more than they gain.
PARALLEL_MIN_ROWS = 2048


def _workers_from_env() -> int:
    value = os.environ.get("REPRO_NUM_WORKERS")
    if value is not None:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


_num_workers = _workers_from_env()
_serial_only = False
#: Live executors keyed by worker count, LRU-ordered.  Bounded: repeated
#: ``set_num_workers`` flips (benchmark sweeps, per-process bootstraps)
#: must not accumulate thread pools for every size ever requested.
_pools: "OrderedDict[int, ThreadPoolExecutor]" = OrderedDict()
_MAX_POOLS = 2
_pool_lock = threading.Lock()


def get_num_workers() -> int:
    """Configured worker count (1 = fully serial)."""
    return _num_workers


def set_num_workers(workers: int) -> int:
    """Set the worker count; returns the previous value.

    Changing the count changes chunk plans, and therefore (for GEMM-backed
    kernels) the floating-point results — treat it as a run-level setting,
    not something to flip mid-training.
    """
    global _num_workers
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    previous = _num_workers
    _num_workers = int(workers)
    return previous


@contextmanager
def num_workers(workers: int) -> Iterator[int]:
    """Scope a worker-count change to a ``with`` block."""
    previous = set_num_workers(workers)
    try:
        yield _num_workers
    finally:
        set_num_workers(previous)


@contextmanager
def serial_execution() -> Iterator[None]:
    """Run chunked kernels on the calling thread, same chunk plan.

    The plan (and hence every floating-point result) is identical to the
    pooled execution — this is the bit-for-bit determinism check used by
    the integration tests, and a debugging aid when a worker thread hides
    a traceback.
    """
    global _serial_only
    previous = _serial_only
    _serial_only = True
    try:
        yield
    finally:
        _serial_only = previous


def parallel_enabled() -> bool:
    """True when chunked kernels may dispatch to the worker pool."""
    return _num_workers > 1 and not _serial_only


def chunk_plan(n: int, *, min_rows: int = PARALLEL_MIN_ROWS,
               workers: Optional[int] = None) -> Optional[List[Tuple[int, int]]]:
    """Contiguous ``[start, stop)`` blocks covering ``range(n)``.

    Returns ``None`` when the work should not split: fewer than two
    workers configured, or ``n`` below the threshold.  A pure function of
    its arguments — the serial/parallel execution mode does not affect it.
    """
    w = _num_workers if workers is None else workers
    if w <= 1 or n < min_rows:
        return None
    blocks = min(w, max(1, n // (min_rows // 2)))
    if blocks <= 1:
        return None
    step = -(-n // blocks)            # ceil division
    return [(start, min(start + step, n)) for start in range(0, n, step)]


def _get_pool(size: int) -> ThreadPoolExecutor:
    with _pool_lock:
        pool = _pools.get(size)
        if pool is None:
            pool = ThreadPoolExecutor(max_workers=size,
                                      thread_name_prefix="repro-kernel")
            _pools[size] = pool
            while len(_pools) > _MAX_POOLS:
                _, evicted = _pools.popitem(last=False)
                evicted.shutdown(wait=False)
        else:
            _pools.move_to_end(size)
        return pool


def shutdown_pools(wait: bool = False) -> None:
    """Shut down every live kernel pool (registered at interpreter exit).

    Callable directly by embedders/tests; idempotent.  The next
    :func:`run_chunked` dispatch after a shutdown simply creates a fresh
    pool.
    """
    with _pool_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


atexit.register(shutdown_pools)


def _reset_after_fork() -> None:
    """Drop inherited pool state in a forked child.

    The parent's executor threads do not exist in the child, so the
    inherited ``ThreadPoolExecutor`` objects are husks whose internal
    locks may have been captured mid-operation — calling ``shutdown`` on
    them (or reusing them) can deadlock.  The child discards the
    references (no threads to stop) and re-creates pools on demand; the
    lock is re-minted for the same reason.
    """
    global _pool_lock
    _pool_lock = threading.Lock()
    _pools.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


def run_chunked(fn: Callable[[int, int], None],
                plan: Sequence[Tuple[int, int]]) -> None:
    """Run ``fn(start, stop)`` for every block of ``plan``.

    ``fn`` must write its results into preallocated output storage (the
    blocks are disjoint, so no synchronisation is needed).  Dispatches to
    the shared pool when parallelism is enabled; otherwise runs the very
    same blocks in order on the calling thread.  Exceptions propagate
    either way.
    """
    if not parallel_enabled() or len(plan) <= 1:
        for start, stop in plan:
            fn(start, stop)
        return
    pool = _get_pool(min(_num_workers, len(plan)))
    futures = [pool.submit(fn, start, stop) for start, stop in plan]
    for future in futures:
        future.result()
