"""Global gradient-mode switch: ``no_grad()`` disables tape construction.

Training builds a reverse-mode DAG for every op: parent tuples, a
``_backward`` closure, and (for some ops) backward-only precomputation such
as ``log_softmax``'s cached softmax.  Inference needs none of it.  Rather
than threading a flag through every op, the switch lives here and is
consulted at the single point where all ops wire their results into the
graph — :meth:`Tensor._make_child` — so one check covers plain ops and
fused kernels alike.

The flag is a process-global, not thread-local: the chunk-parallel executor
(:mod:`repro.tensor._parallel`) runs raw NumPy block functions on its
workers, never Tensor ops, so no op ever executes off the main thread.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_GRAD_ENABLED: bool = True


def grad_enabled() -> bool:
    """Return ``True`` when ops should record the autograd tape."""
    return _GRAD_ENABLED


def set_grad_enabled(mode: bool) -> bool:
    """Set the grad mode; returns the previous mode (for manual restore)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = bool(mode)
    return previous


@contextmanager
def no_grad() -> Iterator[None]:
    """Context manager: ops inside produce graph-free leaf tensors.

    Results are bitwise identical to the training-mode forward — the same
    kernels run on the same values; only the bookkeeping (parent tracking,
    ``_backward`` closures, backward-only caches) is skipped.  Calling
    ``backward()`` on a tensor created inside raises, as it has no graph.
    Re-entrant and exception-safe.
    """
    previous = set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)


@contextmanager
def enable_grad() -> Iterator[None]:
    """Re-enable tape construction inside an enclosing :func:`no_grad`."""
    previous = set_grad_enabled(True)
    try:
        yield
    finally:
        set_grad_enabled(previous)
