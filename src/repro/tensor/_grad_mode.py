"""Gradient-mode switch: ``no_grad()`` disables tape construction.

Training builds a reverse-mode DAG for every op: parent tuples, a
``_backward`` closure, and (for some ops) backward-only precomputation such
as ``log_softmax``'s cached softmax.  Inference needs none of it.  Rather
than threading a flag through every op, the switch lives here and is
consulted at the single point where all ops wire their results into the
graph — :meth:`Tensor._make_child` — so one check covers plain ops and
fused kernels alike.

The flag is **thread-local**: the serving front end
(:mod:`repro.serving`) runs warmed :class:`~repro.inference.Predictor`
workers on their own threads, each entering ``no_grad()`` around its own
forward, and one worker's mode must never leak into another thread (or
into a training loop on the main thread).  Each thread starts in the
default grad-on state.  The chunk-parallel executor
(:mod:`repro.tensor._parallel`) is unaffected — its workers run raw NumPy
block functions, never Tensor ops.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class _GradState(threading.local):
    """Per-thread grad mode; the class attribute is the fresh-thread
    default (reads fall back to it until the thread first writes)."""

    enabled: bool = True


_STATE = _GradState()


def grad_enabled() -> bool:
    """Return ``True`` when ops should record the autograd tape."""
    return _STATE.enabled


def set_grad_enabled(mode: bool) -> bool:
    """Set the calling thread's grad mode; returns the previous mode."""
    previous = _STATE.enabled
    _STATE.enabled = bool(mode)
    return previous


@contextmanager
def no_grad() -> Iterator[None]:
    """Context manager: ops inside produce graph-free leaf tensors.

    Results are bitwise identical to the training-mode forward — the same
    kernels run on the same values; only the bookkeeping (parent tracking,
    ``_backward`` closures, backward-only caches) is skipped.  Calling
    ``backward()`` on a tensor created inside raises, as it has no graph.
    Re-entrant and exception-safe.
    """
    previous = set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)


@contextmanager
def enable_grad() -> Iterator[None]:
    """Re-enable tape construction inside an enclosing :func:`no_grad`."""
    previous = set_grad_enabled(True)
    try:
        yield
    finally:
        set_grad_enabled(previous)
