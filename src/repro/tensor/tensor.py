"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the computational substrate of the whole library.  The paper's
reference implementation uses PyTorch; nothing in the paper depends on GPU
kernels, so we reproduce the required functionality as a small, well-tested
autograd engine over ``numpy.ndarray``.

Design
------
A :class:`Tensor` wraps a NumPy array (``data``) plus an optional gradient
buffer (``grad``).  Differentiable operations build a DAG: each result tensor
remembers its parent tensors and a ``_backward`` closure that accumulates
gradients into those parents.  :meth:`Tensor.backward` topologically sorts the
DAG and runs the closures in reverse order.

Only the operations the models in this repository need are implemented, but
each is implemented with full broadcasting support and is validated against
finite differences in ``tests/tensor/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import _grad_mode as _grad
from . import _segment_plans as _plans
from . import precision as _precision
from .tape import _state as _tape_state

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

#: Reference floating point dtype.  float64 keeps finite-difference gradient
#: checks tight and is the out-of-the-box compute policy; training runs
#: select float32 through :func:`repro.tensor.set_default_dtype` (or
#: ``TrainConfig(dtype=...)``).  Kept as a module constant because it names
#: the *reference* precision — the accumulation dtype for sensitive
#: reductions and the dtype of the pre-policy bit-compatibility path.
DEFAULT_DTYPE = np.float64


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    NumPy broadcasting can expand an operand along new leading axes and along
    axes of size one.  The vector-Jacobian product of broadcasting is a sum
    over the broadcast axes, which is what this helper performs.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to ``numpy.ndarray``.  Floating point data is
        coerced to the compute dtype policy
        (:func:`repro.tensor.get_default_dtype`, float64 unless configured)
        unless an explicit ``dtype`` is given; integer and boolean data
        passes through untouched.
    requires_grad:
        When ``True`` the tensor participates in the autograd graph and will
        receive a ``.grad`` buffer on :meth:`backward`.
    dtype:
        Explicit dtype override.  Bypasses the policy: the data is cast to
        exactly this dtype (floats only — use it to pin a tensor's
        precision regardless of the ambient policy).
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_grad_owned")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, *,
                 dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind in "iub":
            if requires_grad:
                raise TypeError("integer tensors cannot require gradients")
            if dtype is not None:
                arr = arr.astype(_precision.resolve_dtype(dtype))
        else:
            target = (_precision.get_default_dtype() if dtype is None
                      else _precision.resolve_dtype(dtype))
            if arr.dtype != target:
                arr = arr.astype(target)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._grad_owned: bool = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _from_data(cls, data: np.ndarray,
                   requires_grad: bool = False) -> "Tensor":
        """Wrap an ndarray verbatim — no coercion, no policy, no copy.

        Internal constructor for op results and detach/copy, where the
        array's dtype is already the intended one (outputs inherit their
        inputs' dtype; applying the policy here would silently re-cast
        float32 graphs under a float64 policy).
        """
        out = cls.__new__(cls)
        out.data = data
        out.grad = None
        out.requires_grad = requires_grad
        out._backward = None
        out._parents = ()
        out._grad_owned = False
        return out

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False,
              dtype=None) -> "Tensor":
        return Tensor._from_data(np.zeros(shape, dtype=Tensor._resolve(dtype)),
                                 requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False,
             dtype=None) -> "Tensor":
        return Tensor._from_data(np.ones(shape, dtype=Tensor._resolve(dtype)),
                                 requires_grad)

    @staticmethod
    def eye(n: int, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor._from_data(np.eye(n, dtype=Tensor._resolve(dtype)),
                                 requires_grad)

    @staticmethod
    def _resolve(dtype) -> np.dtype:
        return (_precision.get_default_dtype() if dtype is None
                else _precision.resolve_dtype(dtype))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_tag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self) -> float:
        raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy, no graph)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor._from_data(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a leaf tensor with copied data."""
        return Tensor._from_data(self.data.copy(),
                                 requires_grad=self.requires_grad)

    def astype(self, dtype) -> "Tensor":
        """Return a leaf tensor cast to ``dtype`` (no autograd history).

        A no-copy pass-through when the dtype already matches and the
        tensor is a leaf, so repeated casts are free.
        """
        target = _precision.resolve_dtype(dtype)
        if self.data.dtype == target and self._backward is None:
            return self
        return Tensor._from_data(self.data.astype(target, copy=False),
                                 requires_grad=self.requires_grad)

    # ------------------------------------------------------------------
    # Autograd plumbing
    # ------------------------------------------------------------------
    def _make_child(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor wired into the autograd graph.

        ``data`` is adopted verbatim — op outputs inherit their inputs'
        dtype (dtype stability), they are not re-coerced to the policy.
        Under :func:`~repro.tensor.no_grad` the wiring is skipped entirely:
        the result is a graph-free leaf and ``parents``/``backward`` are
        dropped (this is the single choke point every op flows through, so
        one check here covers plain ops and fused kernels alike).

        The training-tape hook also lives here: with a
        :class:`~repro.tensor.tape.TrainingTape` active on this thread,
        grad-wired results are recorded in creation order (capture) or
        served from the recording with their data rebound (replay) — see
        the tape module for the replay contract.
        """
        if _grad.grad_enabled() and any(p.requires_grad for p in parents):
            tape = _tape_state.active
            if tape is not None and tape.mode == 2:  # TrainingTape.REPLAY
                return tape._replay_node(data, backward)
            out = Tensor._from_data(np.asarray(data))
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
            if tape is not None:
                tape.nodes.append(out)
            return out
        return Tensor._from_data(np.asarray(data))

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer.

        Copy-on-write: the first contribution is adopted by reference (the
        arrays handed in by backward closures are freshly computed, so
        copying them only to add later contributions is wasted work for the
        common single-contribution case).  A second contribution allocates
        an owned buffer; from then on accumulation is in place.  Nothing in
        this library mutates ``.grad`` in place from the outside — see
        ``optim/clip.py``, which is deliberately out-of-place.
        """
        grad = _unbroadcast(np.asarray(grad), self.data.shape)
        if grad.dtype != self.data.dtype:
            # Gradients adopt the tensor's own dtype; this is where a
            # float64-accumulated reduction hands its result back to a
            # float32 graph (and a no-op on the pure-float64 path).
            grad = grad.astype(self.data.dtype)
        if self.grad is None:
            self.grad = grad
            self._grad_owned = False
        elif self._grad_owned:
            self.grad += grad
        else:
            self.grad = self.grad + grad
            self._grad_owned = True

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient "
                                   "requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad)
        if grad.dtype != self.data.dtype:
            grad = grad.astype(self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        order = self._topological_order()
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free interior state eagerly: interior grads are only needed
                # to propagate, and the closure is one-shot per backward call.
                node._backward = None
                node._parents = ()

    def _topological_order(self) -> List["Tensor"]:
        """Return tensors reachable from ``self`` in topological order."""
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    def zero_grad(self) -> None:
        """Drop the accumulated gradient."""
        self.grad = None
        self._grad_owned = False

    # ------------------------------------------------------------------
    # Arithmetic (broadcasting, both tensor and scalar operands)
    # ------------------------------------------------------------------
    def _coerce(self, value: ArrayLike) -> "Tensor":
        """Wrap a non-Tensor operand, adopting this tensor's float dtype.

        Scalars and raw arrays entering a mixed expression take the Tensor
        operand's compute dtype — otherwise a stray Python float would
        promote an entire float32 graph to float64 via NumPy's type rules.
        """
        if isinstance(value, Tensor):
            return value
        if self.data.dtype.kind == "f":
            return Tensor(value, dtype=self.data.dtype)
        return Tensor(value)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make_child(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return self._make_child(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make_child(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make_child(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make_child(-self.data, (self,), backward)

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make_child(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data)
                                     if self.data.ndim == 2 else grad * other.data)
                else:
                    g = grad[..., None, :] if grad.ndim == self.data.ndim - 1 else grad
                    self._accumulate(g @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad)
                                      if other.data.ndim == 2 else grad * self.data)
                else:
                    g = grad[..., :, None] if grad.ndim == other.data.ndim - 1 else grad
                    other._accumulate(np.swapaxes(self.data, -1, -2) @ g)

        return self._make_child(out_data, (self, other), backward)

    # Comparison operators return plain boolean arrays (non-differentiable).
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > self._coerce(other).data

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < self._coerce(other).data

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= self._coerce(other).data

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= self._coerce(other).data

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make_child(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple: Optional[Tuple[int, ...]] = tuple(axes) if axes else None
        out_data = self.data.transpose(axes_tuple) if axes_tuple else self.data.T

        def backward(grad: np.ndarray) -> None:
            if axes_tuple is None:
                self._accumulate(grad.T)
            else:
                inverse = np.argsort(axes_tuple)
                self._accumulate(grad.transpose(inverse))

        return self._make_child(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if (isinstance(index, np.ndarray) and index.ndim == 1
                    and index.dtype.kind in "iu"
                    and _plans.fast_kernels_enabled()):
                self._accumulate(_plans.scatter_add_rows(
                    grad, index.astype(np.int64, copy=False),
                    self.data.shape[0]))
            else:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make_child(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make_child(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else (
            np.prod([self.data.shape[a] for a in
                     ((axis,) if isinstance(axis, int) else axis)]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly among ties, matching subgradient choice.
            mask /= mask.sum(axis=axis, keepdims=True)
            g = grad if keepdims or axis is None else np.expand_dims(grad, axis)
            self._accumulate(mask * g)

        return self._make_child(out_data, (self,), backward)

    def min(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))
