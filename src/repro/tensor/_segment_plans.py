"""Sorted-reduction plans for the segment/scatter kernels.

``np.add.at`` / ``np.maximum.at`` are unbuffered scatter loops and run
10-100x slower than NumPy's vectorised reductions.  Every segment reduction
over the same ``segment_ids`` array can instead share one *plan*: argsort
the ids once, then every sum/max over those ids becomes a gather into
sorted order followed by a single ``ufunc.reduceat`` sweep.

Plans are cached per ids array.  The cache key is the array's memory
identity (data pointer, shape, strides, dtype), not its contents, so a hit
costs O(1) regardless of how many pairs the array holds, and two NumPy
*views* of the same rows (e.g. ``src, dst = edge_index`` unpacked freshly
each forward pass) resolve to the same plan.  Each cache entry keeps a
strong reference to its ids array, which pins the memory and guarantees the
key can never alias a different live array.  The one contract this imposes
on callers: segment-id arrays must be treated as immutable while in use
(all structural arrays in this library already are).

The module depends only on NumPy/SciPy, so both :mod:`repro.tensor.ops`
and :mod:`repro.tensor.segment` can build on it without an import cycle.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from . import _parallel
from . import workspace as _ws

try:  # pragma: no cover - import guard for scipy internals
    from scipy.sparse import _sparsetools as _sptools
except ImportError:  # pragma: no cover
    _sptools = None

#: Upper bound on cached plans; LRU-evicted beyond this.  Each entry pins
#: its ids array, so the bound also caps the pinned memory.  Sized above a
#: minibatch epoch's working set (stable per-batch structural ids plus the
#: fresh pooled-level ids of every step): a smaller bound made the LRU lap
#: itself once per epoch, evicting the long-lived entries the cache exists
#: to keep.
PLAN_CACHE_CAPACITY = 1024

#: 2-D segment sums switch from ``add.reduceat`` to a CSR sparse-dense
#: product at this many input rows — below it the matrix build costs more
#: than it saves.
_SPARSE_MIN_ROWS = 512

_FAST = True


def fast_kernels_enabled() -> bool:
    """Whether the sorted-reduction kernels are active (default True)."""
    return _FAST


@contextmanager
def naive_kernels() -> Iterator[None]:
    """Context manager forcing the original ``ufunc.at`` code paths.

    Exists so the test suite can run the fast kernels against the old
    semantics on identical inputs; has no production use.
    """
    global _FAST
    previous = _FAST
    _FAST = False
    try:
        yield
    finally:
        _FAST = previous


class SegmentReductionPlan:
    """One ids array, argsorted once, reusable for any reduction over it.

    Attributes
    ----------
    ids:
        The segment-id array the plan was built for (pinned).
    num_segments:
        Number of output rows.
    order:
        Permutation sorting ``ids`` (stable, so reductions over equal ids
        keep the original relative order — relevant for float summation).
    starts:
        Index into the sorted order where each *present* segment begins.
    present:
        The distinct segment ids, ascending (one per ``starts`` entry).
    counts:
        Per-segment element counts, length ``num_segments``.
    """

    __slots__ = ("ids", "num_segments", "order", "starts", "present",
                 "_counts", "_scatter")

    def __init__(self, ids: np.ndarray, num_segments: int):
        self.ids = ids
        self.num_segments = int(num_segments)
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        if sorted_ids.size:
            boundary = np.empty(sorted_ids.size, dtype=bool)
            boundary[0] = True
            np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=boundary[1:])
            starts = np.flatnonzero(boundary)
            present = sorted_ids[starts]
        else:
            starts = np.zeros(0, dtype=np.int64)
            present = np.zeros(0, dtype=np.int64)
        self.order = order
        self.starts = starts
        self.present = present
        self._counts = None
        self._scatter: Dict[str, sp.csr_matrix] = {}

    @property
    def counts(self) -> np.ndarray:
        if self._counts is None:
            self._counts = np.bincount(self.ids,
                                       minlength=self.num_segments)
        return self._counts

    def scatter_for(self, dtype: np.dtype) -> Tuple[np.ndarray, np.ndarray,
                                                    np.ndarray]:
        """``(indptr, indices, data)`` of the CSR selector in ``dtype``.

        A sparse-dense product with this selector is the fastest
        segment-sum for wide 2-D values (single C pass, no (P, d) gather
        materialised).  Built lazily per dtype — the raw C kernel requires
        the matrix data and the dense operand to agree — with the index
        structure shared between the float32 and float64 variants.  Stored
        as bare arrays rather than an ``sp.csr_matrix``: the constructor
        re-derives index dtypes (a content scan) and re-validates the
        format on every build, which is measurable when fresh ids (one
        negative-sample scatter per training step) build a plan each step.
        """
        key = np.dtype(dtype).char
        triple = self._scatter.get(key)
        if triple is None:
            p = self.ids.shape[0]
            if self._scatter:
                # Reuse the structure arrays of an existing variant.
                indptr, indices, _ = next(iter(self._scatter.values()))
            else:
                # The plan already holds the CSR structure: row s of the
                # selector covers positions ``order[indptr[s]:indptr[s+1]]``
                # (ascending, because the argsort is stable), so the matrix
                # is assembled directly — no COO round-trip, no sort.
                indptr = np.zeros(self.num_segments + 1, dtype=np.int64)
                np.cumsum(self.counts, out=indptr[1:])
                indices = self.order
            triple = (indptr, indices, np.ones(p, dtype=dtype))
            self._scatter[key] = triple
        return triple

    @property
    def scatter_matrix(self) -> sp.csr_matrix:
        """Back-compat alias: the float64 selector as a real CSR matrix."""
        indptr, indices, data = self.scatter_for(np.float64)
        return sp.csr_matrix((data, indices, indptr),
                             shape=(self.num_segments, self.ids.shape[0]))

    def _csr_sum(self, values: np.ndarray, dtype: np.dtype) -> np.ndarray:
        indptr, indices, data = self.scatter_for(dtype)
        dense = np.ascontiguousarray(values, dtype=dtype)
        if _sptools is None:  # pragma: no cover - without scipy internals
            matrix = sp.csr_matrix((data, indices, indptr),
                                   shape=(self.num_segments,
                                          self.ids.shape[0]))
            return np.asarray(matrix @ dense, dtype=dtype)
        # Direct kernel call: scipy's ``@`` re-derives index dtypes
        # and re-validates shapes on every product, which is
        # measurable at this call frequency.  The zeroed accumulator can
        # come from the inference workspace — csr_matvecs adds into it,
        # so a re-zeroed recycled buffer is bitwise identical to a fresh
        # np.zeros.
        out = _ws.ws_zeros((self.num_segments, dense.shape[1]), dtype)
        n_rows, n_vecs = dense.shape
        plan = _parallel.chunk_plan(self.num_segments)
        if plan is None:
            _sptools.csr_matvecs(self.num_segments, n_rows, n_vecs,
                                 indptr, indices, data,
                                 dense.ravel(), out.ravel())
            return out

        flat = dense.ravel()

        def block(start: int, stop: int) -> None:
            # Output rows are independent dot products, so splitting by
            # output row block is bitwise identical to the full call.
            base = indptr[start]
            _sptools.csr_matvecs(stop - start, n_rows, n_vecs,
                                 indptr[start:stop + 1] - base,
                                 indices[base:indptr[stop]],
                                 data[base:indptr[stop]],
                                 flat, out[start:stop].ravel())

        _parallel.run_chunked(block, plan)
        return out

    def sum(self, values: np.ndarray,
            dtype: Optional[np.dtype] = None) -> np.ndarray:
        """``out[s] = Σ_{i: ids[i]==s} values[i]``; empty segments are 0.

        ``dtype`` defaults to the values' own dtype (dtype stability); the
        1-D path always accumulates in float64 internally (``np.bincount``)
        and casts at the boundary.
        """
        if dtype is None:
            dtype = values.dtype
        if values.ndim == 1:
            out = np.bincount(self.ids, weights=values,
                              minlength=self.num_segments)
            return out if out.dtype == dtype else out.astype(dtype)
        if values.ndim == 2 and values.shape[0] and (
                self._scatter or values.shape[0] >= _SPARSE_MIN_ROWS):
            # Sparse-dense product: fastest for wide inputs, but the CSR
            # build is not free, so small one-shot plans (fresh pooled-level
            # ids every epoch) take the reduceat path below instead.
            out = self._csr_sum(values, np.dtype(dtype))
            return out
        out = _ws.ws_zeros((self.num_segments,) + values.shape[1:], dtype)
        if self.starts.size:
            out[self.present] = np.add.reduceat(self._take_sorted(values),
                                                self.starts, axis=0)
        return out

    def max(self, values: np.ndarray,
            dtype: Optional[np.dtype] = None) -> np.ndarray:
        """Per-segment maximum; empty or non-finite segments yield 0.

        Matches the semantics of the original ``np.maximum.at`` kernel,
        which seeded with ``-inf`` and zeroed every non-finite result.
        """
        if dtype is None:
            dtype = values.dtype
        out = _ws.ws_zeros((self.num_segments,) + values.shape[1:], dtype)
        if self.starts.size:
            peak = np.maximum.reduceat(self._take_sorted(values),
                                       self.starts, axis=0)
            out[self.present] = np.where(np.isfinite(peak), peak, 0.0)
        return out

    def _take_sorted(self, values: np.ndarray) -> np.ndarray:
        """``values[self.order]`` via a workspace slot when one is active."""
        ws = _ws.active_workspace()
        if ws is not None and values.dtype.kind == "f":
            return np.take(values, self.order, axis=0,
                           out=ws.take(values.shape, values.dtype))
        return values[self.order]


def _array_key(arr: np.ndarray) -> Tuple:
    interface = arr.__array_interface__
    return (interface["data"][0], arr.shape, arr.strides, arr.dtype.str)


_CACHE: "OrderedDict[Tuple, SegmentReductionPlan]" = OrderedDict()
_HITS = 0
_MISSES = 0
_EVICTIONS = 0


def plan_for(ids: np.ndarray, num_segments: int) -> SegmentReductionPlan:
    """Return the (possibly cached) reduction plan for ``ids``."""
    global _HITS, _MISSES, _EVICTIONS
    key = _array_key(ids) + (int(num_segments),)
    plan = _CACHE.get(key)
    if plan is not None:
        _HITS += 1
        _CACHE.move_to_end(key)
        return plan
    _MISSES += 1
    plan = SegmentReductionPlan(ids, num_segments)
    _CACHE[key] = plan
    if len(_CACHE) > PLAN_CACHE_CAPACITY:
        _CACHE.popitem(last=False)
        _EVICTIONS += 1
    return plan


def scatter_add_rows(values: np.ndarray, ids: np.ndarray,
                     num_rows: int) -> np.ndarray:
    """Fast ``np.add.at(zeros, ids, values)`` for 1-D integer ``ids``.

    This is the backward pass of every row gather (``x[idx]``), which is
    the single hottest scatter in training.  The output follows the
    values' dtype.
    """
    return plan_for(ids, num_rows).sum(values)


#: Concatenated id arrays per (ids_a, ids_b) identity pair, LRU-bounded.
#: Entries pin both sources, which keeps the pointer-based keys valid.
_PAIR_IDS_CACHE: "OrderedDict[Tuple, Tuple]" = OrderedDict()
_PAIR_IDS_CAPACITY = 256


def joined_pair_ids(ids_a: np.ndarray, ids_b: np.ndarray) -> np.ndarray:
    """``np.concatenate([ids_a, ids_b])`` with identity-stable caching.

    The paired-gather backwards (``pair_dot``, the sampled-BCE decoder)
    scatter two value blocks into the same output rows; reducing over the
    concatenated ids does both in one plan sweep.  Caching the
    concatenation per source-identity pair keeps the joined array's own
    identity — and therefore its reduction plan and CSR selector — stable
    across training steps whenever the sources are stable.
    """
    key = _array_key(ids_a) + _array_key(ids_b)
    hit = _PAIR_IDS_CACHE.get(key)
    if hit is not None:
        _PAIR_IDS_CACHE.move_to_end(key)
        return hit[2]
    joined = np.concatenate([ids_a, ids_b])
    _PAIR_IDS_CACHE[key] = (ids_a, ids_b, joined)
    if len(_PAIR_IDS_CACHE) > _PAIR_IDS_CAPACITY:
        _PAIR_IDS_CACHE.popitem(last=False)
    return joined


def plan_cache_stats() -> Tuple[int, int, int]:
    """``(hits, misses, live_entries)`` — diagnostics for tests/benches."""
    return _HITS, _MISSES, len(_CACHE)


def segment_plan_stats() -> dict:
    """Dict-shaped counters matching ``StructureCache.stats()``.

    The uniform shape lets trainers surface every cache's effectiveness
    in one profile report (``TrainConfig(profile=True)``).
    """
    return {"hits": _HITS, "misses": _MISSES, "evictions": _EVICTIONS,
            "entries": len(_CACHE), "capacity": PLAN_CACHE_CAPACITY}


def clear_plan_cache() -> None:
    """Drop all cached plans (releases the pinned ids arrays)."""
    global _HITS, _MISSES, _EVICTIONS
    _CACHE.clear()
    _PAIR_IDS_CACHE.clear()
    _HITS = 0
    _MISSES = 0
    _EVICTIONS = 0
