"""Shared state for the opt-in runtime sanitizers.

This module lives inside ``repro.tensor`` (not ``repro.analysis``) so the
hot kernel modules can consult the flag without importing the analysis
package — ``repro.analysis.sanitize`` imports the tensor stack, and the
reverse import would be circular.  It deliberately contains *only* the
enabled flag, the error type and the cheap input checks the kernels call:
the patching machinery (which functions get wrapped and how) stays in
:mod:`repro.analysis.sanitize`.

Cost discipline: when sanitizers are off, the only cost the kernels pay is
``if _san.ENABLED`` — one module-attribute load and branch per *kernel
call* (not per element, and not on the ``Tensor._make_child`` choke point,
which is patched-in/patched-out instead and therefore exactly free when
off).
"""

from __future__ import annotations

import numpy as np

from .precision import SUPPORTED_DTYPES

#: Toggled by repro.analysis.sanitize.enable_sanitizer()/disable_sanitizer().
ENABLED: bool = False


class SanitizerError(RuntimeError):
    """An invariant violation caught by a runtime sanitizer.

    Raised at the violation site with a report naming the op, operand
    shapes and dtype provenance — the debugging context a silent NaN or a
    stale arena slot normally destroys.
    """


def check_segment_inputs(op: str, values: np.ndarray,
                         segment_ids: np.ndarray) -> None:
    """Dtype-contract assertions for segment-kernel inputs.

    The segment plans cache per-ids argsorts and CSR scatter matrices and
    the reductions assume policy-supported float values with int64 ids; a
    float16/longdouble array sneaking in would silently take the slow
    ufunc paths (or upcast downstream).  Called by the public segment
    kernels only when sanitizers are enabled.
    """
    if values.dtype.kind == "f" and values.dtype not in SUPPORTED_DTYPES:
        raise SanitizerError(
            f"{op}: values dtype {values.dtype} violates the precision "
            f"policy (supported: float32/float64) — route the input "
            f"through resolve_dtype()")
    if segment_ids.dtype != np.int64:
        raise SanitizerError(
            f"{op}: segment_ids dtype {segment_ids.dtype} — the segment "
            f"plans key on int64 id arrays")
