"""Shared-memory gradient exchange for data-parallel training.

The sharded trainer (``repro/training/dataparallel.py``) runs one
synchronous-SGD step per coordinator iteration: every shard contributes
the gradient of its minibatch chunk, the coordinator reduces the
contributions into one flat gradient, takes a single Adam step on the
master weights and broadcasts them back.  This module owns the transport
and the arithmetic of that exchange; everything in it is deliberately
NumPy-on-raw-arrays (no :class:`~repro.tensor.tensor.Tensor`), because
the views may be backed by ``multiprocessing.shared_memory`` buffers
that must never enter the autograd tape.

Layout
------
Two segments per run:

* **grads** — ``ACCUM_DTYPE`` (float64), shape
  ``(2, num_shards, flat_size + 1)``.  Axis 0 is a double buffer indexed
  by step parity; axis 1 is one *lane per shard* (not per worker — see
  below); the last element of each lane is the lane's weight (the number
  of graphs in the shard's chunk this step, ``0.0`` when the shard had no
  chunk because another shard has more chunks per epoch).
* **params** — compute dtype, shape ``(flat_size,)``.  The coordinator
  writes the post-step master weights here; workers load them before
  their next forward.

Determinism
-----------
Lanes are per *shard* and the reduction iterates lanes in fixed shard
order, so the floating-point sum is a function of the shard schedule
alone — never of how shards are packed onto workers or of worker arrival
order.  A 1-process run and an N-process run of the same shard schedule
execute the identical sequence of float operations and are bitwise
identical.  Each lane is written as ``weight · grad`` with the product
formed in ``ACCUM_DTYPE`` (float32 gradients are cast up exactly), and
the weighted mean divides once, in ``ACCUM_DTYPE``, after the fixed-order
sum.

Reduce window
-------------
Every write to a lane or segment happens inside a function decorated
with :func:`reduce_window`.  The decorator is the machine-checkable
marker of the protocol's barrier guarantee: a worker calls these
functions only between receiving a step token and sending its "done"
message, and the coordinator only after collecting every "done" and
before releasing workers — so no two processes ever write the same lane,
and the coordinator never reads a lane mid-write.  The double buffer
widens the window: once workers are released they may write the *other*
grads buffer while the coordinator is still reading this one.  replint
rule RL006 enforces the static half of this contract (segment writes
only inside decorated functions, accumulation only through
``ACCUM_DTYPE``).

The :class:`LocalFlatComm` twin backs the same layout with process-local
arrays so the serial fallback runs the identical write/reduce code —
which is what makes "serial vs multi-process" a bitwise property rather
than a tolerance one.
"""

from __future__ import annotations

import functools
import threading
from typing import Dict, List, Optional, Sequence

import numpy as np

from .precision import ACCUM_DTYPE, resolve_dtype

__all__ = [
    "CommUnavailable", "LocalFlatComm", "SharedFlatComm", "clear_lane",
    "in_reduce_window", "probe_shared_memory", "publish_params",
    "reduce_lanes", "reduce_window", "write_lane", "write_segment",
]


class CommUnavailable(RuntimeError):
    """Shared-memory communication cannot be used here.

    Raised by :func:`probe_shared_memory` / :class:`SharedFlatComm` when
    the platform lacks ``multiprocessing.shared_memory`` or refuses to
    map a segment.  The sharded trainer catches exactly this type and
    falls back to the serial schedule, recording the reason.
    """


# ---------------------------------------------------------------------------
# Reduce window marker
# ---------------------------------------------------------------------------
class _WindowState(threading.local):
    depth: int = 0


_window = _WindowState()


def in_reduce_window() -> bool:
    """True while the calling thread is inside a reduce-window function."""
    return _window.depth > 0


def reduce_window(fn):
    """Mark ``fn`` as a barrier-guarded segment writer.

    All process-shared segment writes live in functions carrying this
    decorator (statically enforced by replint RL006); the runtime wrapper
    keeps a nesting depth so tests and sanitizers can assert the
    discipline dynamically via :func:`in_reduce_window`.
    """
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        _window.depth += 1
        try:
            return fn(*args, **kwargs)
        finally:
            _window.depth -= 1
    return wrapper


# ---------------------------------------------------------------------------
# Lane arithmetic (shared by the process-local and shared-memory backends)
# ---------------------------------------------------------------------------
@reduce_window
def clear_lane(lane: np.ndarray) -> None:
    """Zero one lane (grad vector and weight slot).

    Used for shards that have no chunk at this step: the stale contents
    from two steps ago (the same double-buffer slot) must not leak into
    the reduction, and a zero weight tells the reducer to skip the lane
    without reading its grad vector.
    """
    lane[...] = 0.0


@reduce_window
def write_lane(lane: np.ndarray, grads: Sequence[Optional[np.ndarray]],
               sizes: Sequence[int], weight: float) -> None:
    """Write one shard's contribution: ``weight · grad`` per parameter.

    ``grads`` is the per-parameter gradient list in ``FlatParams`` order
    and ``sizes`` the matching flat element counts; a ``None`` entry
    (parameter untouched by this chunk's backward) contributes zeros.
    The product is formed directly in the lane in ``ACCUM_DTYPE`` —
    float32 gradients are cast up exactly, so the lane content is
    independent of which process computes it.  The lane's final slot
    records the weight.
    """
    lo = 0
    for g, n in zip(grads, sizes):
        if g is None:
            lane[lo:lo + n] = 0.0
        else:
            np.multiply(g.reshape(-1), weight, out=lane[lo:lo + n],
                        dtype=ACCUM_DTYPE)
        lo += n
    lane[-1] = weight


@reduce_window
def reduce_lanes(lanes: np.ndarray, out: np.ndarray) -> float:
    """Weighted-mean reduction over lanes, in fixed shard order.

    ``lanes`` is the ``(num_shards, flat_size + 1)`` buffer of the
    current step; ``out`` receives the combined flat gradient
    (``ACCUM_DTYPE``).  Iterating shards in ascending order makes the
    float sum a pure function of the shard schedule; zero-weight lanes
    are skipped entirely, exactly as a serial run skips a shard with no
    chunk.  Returns the total weight (0.0 when no shard contributed).
    """
    out[...] = 0.0
    total = 0.0
    for s in range(lanes.shape[0]):
        w = float(lanes[s, -1])
        if w == 0.0:
            continue
        np.add(out, lanes[s, :-1], out=out, dtype=ACCUM_DTYPE)
        total += w
    if total > 0.0:
        np.divide(out, total, out=out, dtype=ACCUM_DTYPE)
    return total


@reduce_window
def write_segment(segment: np.ndarray, values) -> None:
    """Publish ``values`` into a shared segment (zero fill, broadcast)."""
    segment[...] = values


@reduce_window
def publish_params(segment: np.ndarray, flat_params) -> None:
    """Flatten master weights into the params segment.

    ``flat_params`` is the coordinator's
    :class:`~repro.optim.FlatParams`; the actual stores go through its
    offset map (one contiguous slice per parameter, no temporaries).
    """
    flat_params.write_params(segment)


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------
class LocalFlatComm:
    """Process-local twin of :class:`SharedFlatComm`.

    Identical layout and views backed by ordinary arrays, so the serial
    fallback schedule runs through the very same :func:`write_lane` /
    :func:`reduce_lanes` code path as the multi-process run — the basis
    of the bitwise serial/parallel parity contract.
    """

    shared = False

    def __init__(self, flat_size: int, num_shards: int, dtype) -> None:
        self.flat_size = int(flat_size)
        self.num_shards = int(num_shards)
        self.dtype = resolve_dtype(dtype)
        self.grads = np.zeros((2, self.num_shards, self.flat_size + 1),
                              dtype=ACCUM_DTYPE)
        self.params = np.zeros(self.flat_size, dtype=self.dtype)

    @property
    def nbytes(self) -> int:
        return int(self.grads.nbytes + self.params.nbytes)

    def lanes(self, step: int) -> np.ndarray:
        """The ``(num_shards, flat_size + 1)`` buffer for this step."""
        return self.grads[step % 2]

    def close(self) -> None:  # interface parity with SharedFlatComm
        pass

    def unlink(self) -> None:
        pass


def _unregister_from_tracker(shm) -> None:
    """Detach an *attached* segment from the child's resource tracker.

    ``SharedMemory(name=...)`` registers the mapping with the process's
    resource tracker, and on worker exit the tracker would unlink a
    segment the coordinator still owns (and warn about a "leak").  Only
    the creating process may manage the segment's lifetime, so attached
    handles are unregistered.  Best-effort: the tracker API is private
    and its absence only costs a warning at exit.
    """
    try:  # pragma: no cover - exercised only in worker processes
        from multiprocessing import resource_tracker
        resource_tracker.unregister(getattr(shm, "_name", shm.name),
                                    "shared_memory")
    except Exception:
        pass


class SharedFlatComm:
    """Owner/attachment of the two shared-memory segments.

    The coordinator constructs one (``create=True`` via the normal
    constructor) and serialises :meth:`spec` into each worker's spawn
    payload; workers call :meth:`attach`.  ``close()`` drops this
    process's mapping; ``unlink()`` (owner only) destroys the segments.
    """

    shared = True

    def __init__(self, flat_size: int, num_shards: int, dtype, *,
                 _names: Optional[Dict[str, str]] = None,
                 _untrack: bool = False) -> None:
        try:
            from multiprocessing import shared_memory
        except ImportError as exc:  # pragma: no cover - always importable
            raise CommUnavailable(
                f"multiprocessing.shared_memory unavailable: {exc}")
        self.flat_size = int(flat_size)
        self.num_shards = int(num_shards)
        self.dtype = resolve_dtype(dtype)
        self.owner = _names is None
        grads_count = 2 * self.num_shards * (self.flat_size + 1)
        grads_bytes = grads_count * np.dtype(ACCUM_DTYPE).itemsize
        params_bytes = max(1, self.flat_size * self.dtype.itemsize)
        try:
            if self.owner:
                self._grads_shm = shared_memory.SharedMemory(
                    create=True, size=grads_bytes)
                self._params_shm = shared_memory.SharedMemory(
                    create=True, size=params_bytes)
            else:
                self._grads_shm = shared_memory.SharedMemory(
                    name=_names["grads"])
                self._params_shm = shared_memory.SharedMemory(
                    name=_names["params"])
                if _untrack:
                    _unregister_from_tracker(self._grads_shm)
                    _unregister_from_tracker(self._params_shm)
        except (OSError, ValueError) as exc:
            raise CommUnavailable(f"shared memory mapping failed: {exc}")
        # Segments may be page-rounded: slice to the exact element count
        # before reshaping.
        self.grads = np.frombuffer(
            self._grads_shm.buf, dtype=ACCUM_DTYPE,
            count=grads_count).reshape(2, self.num_shards,
                                       self.flat_size + 1)
        self.params = np.frombuffer(
            self._params_shm.buf, dtype=self.dtype, count=self.flat_size)
        if self.owner:
            clear_lane(self.grads)        # whole-buffer zero fill
            write_segment(self.params, 0.0)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return int(self._grads_shm.size + self._params_shm.size)

    def lanes(self, step: int) -> np.ndarray:
        """The ``(num_shards, flat_size + 1)`` buffer for this step."""
        return self.grads[step % 2]

    def spec(self) -> Dict:
        """Picklable attachment spec for worker processes."""
        return {
            "flat_size": self.flat_size,
            "num_shards": self.num_shards,
            "dtype": self.dtype.name,
            "names": {"grads": self._grads_shm.name,
                      "params": self._params_shm.name},
        }

    @classmethod
    def attach(cls, spec: Dict, *,
               untrack: bool = False) -> "SharedFlatComm":
        """Map the coordinator's segments inside a worker process.

        ``untrack`` detaches the mapping from the worker's resource
        tracker.  Under the standard ``multiprocessing`` start methods
        (fork *and* spawn) workers inherit the coordinator's tracker
        process, whose registry is a set — the duplicate registration on
        attach is a no-op and the owner's ``unlink`` clears it exactly
        once, so the default is ``False``: unregistering from a shared
        tracker would strip the owner's entry.  Pass ``True`` only when
        the attaching process runs its *own* tracker (segments attached
        from an unrelated process), which would otherwise destroy the
        owner's live segments when it exits.
        """
        return cls(spec["flat_size"], spec["num_shards"], spec["dtype"],
                   _names=spec["names"], _untrack=untrack)

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        # The numpy views hold exported pointers into the buffer; they
        # must be released before SharedMemory.close() will succeed.
        self.grads = None
        self.params = None
        for shm in (self._grads_shm, self._params_shm):
            try:
                shm.close()
            except Exception:
                pass

    def unlink(self) -> None:
        """Destroy the segments (owner only; call after ``close``)."""
        if not self.owner:
            return
        for shm in (self._grads_shm, self._params_shm):
            try:
                shm.unlink()
            except Exception:
                pass


def probe_shared_memory() -> None:
    """Raise :exc:`CommUnavailable` when shm segments cannot be created.

    A tiny create/close/unlink round-trip — the cheapest honest answer to
    "will :class:`SharedFlatComm` work here", used by the trainer to pick
    the typed serial fallback up front instead of dying mid-spawn.
    """
    try:
        from multiprocessing import shared_memory
        seg = shared_memory.SharedMemory(create=True, size=16)
    except Exception as exc:
        raise CommUnavailable(f"shared memory probe failed: {exc}")
    try:
        seg.close()
        seg.unlink()
    except Exception:
        pass
