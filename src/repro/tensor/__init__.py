"""NumPy-backed autograd engine (the library's computational substrate)."""

from .tensor import DEFAULT_DTYPE, Tensor
from ._grad_mode import (enable_grad, grad_enabled, no_grad,
                         set_grad_enabled)
from .workspace import (Workspace, active_workspace, training_arena_active,
                        use_training_workspace, use_workspace)
from .tape import TapeInvalid, TrainingTape, active_tape
from .precision import (ACCUM_DTYPE, default_dtype, get_default_dtype,
                        resolve_dtype, set_default_dtype)
from ._parallel import (PARALLEL_MIN_ROWS, chunk_plan, get_num_workers,
                        num_workers, parallel_enabled, serial_execution,
                        set_num_workers)
from .ops import (absolute, affine, clip, concat, dropout, elu, exp,
                  gather_rows, leaky_relu, leaky_relu_project, log,
                  log_softmax, matmul,
                  pair_dot, relu, rowwise_dot, sigmoid, softmax, sqrt,
                  square_norm, stack, tanh, where)
from .segment import (gather_scale_segment_sum, segment_count, segment_max,
                      segment_mean, segment_normalize, segment_softmax,
                      segment_sum)
from ._segment_plans import (SegmentReductionPlan, clear_plan_cache,
                             fast_kernels_enabled, naive_kernels,
                             plan_cache_stats, plan_for, scatter_add_rows,
                             segment_plan_stats)
from .gradcheck import (assert_gradients_close, check_gradients,
                        numeric_gradient, tolerances_for)
from .random import draw_normal, draw_uniform, make_rng, spawn

__all__ = [
    "DEFAULT_DTYPE", "Tensor",
    "enable_grad", "grad_enabled", "no_grad", "set_grad_enabled",
    "Workspace", "active_workspace", "training_arena_active",
    "use_training_workspace", "use_workspace",
    "TapeInvalid", "TrainingTape", "active_tape",
    "ACCUM_DTYPE", "default_dtype", "get_default_dtype", "resolve_dtype",
    "set_default_dtype",
    "PARALLEL_MIN_ROWS", "chunk_plan", "get_num_workers", "num_workers",
    "parallel_enabled", "serial_execution", "set_num_workers",
    "absolute", "affine", "clip", "concat", "dropout", "elu", "exp",
    "gather_rows",
    "leaky_relu", "leaky_relu_project", "log", "log_softmax",
    "matmul", "pair_dot", "relu",
    "rowwise_dot", "sigmoid", "softmax", "sqrt", "square_norm", "stack",
    "tanh", "where",
    "gather_scale_segment_sum", "segment_count", "segment_max",
    "segment_mean", "segment_normalize", "segment_softmax", "segment_sum",
    "SegmentReductionPlan", "clear_plan_cache", "fast_kernels_enabled",
    "naive_kernels", "plan_cache_stats", "plan_for", "scatter_add_rows",
    "segment_plan_stats",
    "assert_gradients_close", "check_gradients", "numeric_gradient",
    "tolerances_for",
    "draw_normal", "draw_uniform", "make_rng", "spawn",
]
