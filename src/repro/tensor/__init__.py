"""NumPy-backed autograd engine (the library's computational substrate)."""

from .tensor import DEFAULT_DTYPE, Tensor
from .ops import (absolute, affine, clip, concat, dropout, elu, exp,
                  gather_rows, leaky_relu, leaky_relu_project, log,
                  log_softmax, matmul,
                  pair_dot, relu, rowwise_dot, sigmoid, softmax, sqrt,
                  square_norm, stack, tanh, where)
from .segment import (gather_scale_segment_sum, segment_count, segment_max,
                      segment_mean, segment_normalize, segment_softmax,
                      segment_sum)
from ._segment_plans import (SegmentReductionPlan, clear_plan_cache,
                             fast_kernels_enabled, naive_kernels,
                             plan_cache_stats, plan_for, scatter_add_rows,
                             segment_plan_stats)
from .gradcheck import assert_gradients_close, check_gradients, numeric_gradient
from .random import make_rng, spawn

__all__ = [
    "DEFAULT_DTYPE", "Tensor",
    "absolute", "affine", "clip", "concat", "dropout", "elu", "exp",
    "gather_rows",
    "leaky_relu", "leaky_relu_project", "log", "log_softmax",
    "matmul", "pair_dot", "relu",
    "rowwise_dot", "sigmoid", "softmax", "sqrt", "square_norm", "stack",
    "tanh", "where",
    "gather_scale_segment_sum", "segment_count", "segment_max",
    "segment_mean", "segment_normalize", "segment_softmax", "segment_sum",
    "SegmentReductionPlan", "clear_plan_cache", "fast_kernels_enabled",
    "naive_kernels", "plan_cache_stats", "plan_for", "scatter_add_rows",
    "segment_plan_stats",
    "assert_gradients_close", "check_gradients", "numeric_gradient",
    "make_rng", "spawn",
]
