"""Differentiable functional operations on :class:`~repro.tensor.Tensor`.

These free functions complement the methods on :class:`Tensor` with the
non-linearities, normalisations and structural operations needed by the GNN
models in this repository.  Every function returns a new tensor wired into
the autograd graph; none mutates its inputs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from . import _grad_mode as _grad
from . import _parallel
from . import _segment_plans as _plans
from . import workspace as _ws
from .precision import ACCUM_DTYPE
from .tensor import DEFAULT_DTYPE, ArrayLike, Number, Tensor


def _gather_rows_data(data: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """``data[idx]`` routed through the active inference workspace.

    ``np.take`` writes the gather into a reusable arena slot when one is
    active (float buffers only — integer index arrays must never be
    workspace-recycled, see :mod:`repro.tensor.workspace`); otherwise this
    is plain fancy indexing, bit for bit.
    """
    ws = _ws.active_workspace()
    if ws is not None and data.dtype.kind == "f":
        out = ws.take(idx.shape + data.shape[1:], data.dtype)
        return np.take(data, idx, axis=0, out=out)
    return data[idx]


def _as_tensor(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# ---------------------------------------------------------------------------
# Elementwise
# ---------------------------------------------------------------------------
def exp(x: ArrayLike) -> Tensor:
    """Elementwise exponential."""
    x = _as_tensor(x)
    out_data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * out_data)

    return x._make_child(out_data, (x,), backward)


def log(x: ArrayLike, eps: float = 0.0) -> Tensor:
    """Elementwise natural logarithm of ``x + eps``."""
    x = _as_tensor(x)
    shifted = x.data + eps
    out_data = np.log(shifted)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad / shifted)

    return x._make_child(out_data, (x,), backward)


def sqrt(x: ArrayLike) -> Tensor:
    """Elementwise square root."""
    x = _as_tensor(x)
    out_data = np.sqrt(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * 0.5 / np.maximum(out_data, 1e-300))

    return x._make_child(out_data, (x,), backward)


def absolute(x: ArrayLike) -> Tensor:
    """Elementwise absolute value (subgradient 0 at the kink)."""
    x = _as_tensor(x)
    out_data = np.abs(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * np.sign(x.data))

    return x._make_child(out_data, (x,), backward)


def clip(x: ArrayLike, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``; gradient flows only inside the range."""
    x = _as_tensor(x)
    out_data = np.clip(x.data, low, high)

    def backward(grad: np.ndarray) -> None:
        inside = (x.data >= low) & (x.data <= high)
        x._accumulate(grad * inside)

    return x._make_child(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Non-linearities
# ---------------------------------------------------------------------------
def relu(x: ArrayLike) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    x = _as_tensor(x)
    mask = x.data > 0
    ws = _ws.active_workspace()
    if ws is None:
        out_data = np.where(mask, x.data, 0.0)
    else:
        # fill + masked copy is bitwise-identical to the np.where select
        # (positives copied verbatim, everything else — including NaN,
        # which compares False — becomes +0.0 in both spellings).
        out_data = ws.take(x.data.shape, x.data.dtype)
        out_data.fill(0)
        np.copyto(out_data, x.data, where=mask)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return x._make_child(out_data, (x,), backward)


def leaky_relu(x: ArrayLike, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU with the paper's default slope of 0.2 (as in GAT)."""
    x = _as_tensor(x)
    # The mask is backward-only state on the max-form branch; skip it in
    # no-grad mode (the closure is never wired, so the free variable is
    # never read).
    mask = x.data > 0 if (_grad.grad_enabled() or negative_slope > 1.0) \
        else None
    if negative_slope <= 1.0:
        # max(x, s·x) selects x on the positive branch and s·x on the
        # negative one — one temporary fewer than the equivalent np.where.
        out_data = _ws.ws_empty(x.data.shape, x.data.dtype)
        np.multiply(x.data, negative_slope, out=out_data)
        np.maximum(x.data, out_data, out=out_data)
    else:
        out_data = np.where(mask, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(np.where(mask, grad, negative_slope * grad))

    return x._make_child(out_data, (x,), backward)


def leaky_relu_project(x: ArrayLike, a: Tensor,
                       negative_slope: float = 0.2) -> Tensor:
    """Fused ``leaky_relu(x) @ a`` (GAT-style attention projection).

    ``a`` may be ``(d,)`` or ``(d, k)``.  The compositional spelling
    retains the activated ``(n, d)`` array plus a mask and runs four full
    passes on the backward; the fused node keeps only the activation and
    applies the slope mask in place on the outer-product gradient.
    """
    x = _as_tensor(x)
    a = _as_tensor(a)
    if not _plans.fast_kernels_enabled():
        return leaky_relu(x, negative_slope=negative_slope) @ a
    plan = (_parallel.chunk_plan(x.data.shape[0])
            if x.data.ndim == 2 else None)
    act = _ws.ws_empty(x.data.shape, x.data.dtype)
    out_shape = ((x.data.shape[0],) if a.data.ndim == 1
                 else (x.data.shape[0], a.data.shape[1]))
    out_dtype = np.result_type(x.data, a.data)
    if plan is None:
        np.maximum(x.data, negative_slope * x.data, out=act)
        out_data = np.matmul(act, a.data, out=_ws.ws_out(out_shape,
                                                         out_dtype))
    else:
        out_data = _ws.ws_empty(out_shape, out_dtype)

        def forward_block(start: int, stop: int) -> None:
            blk = act[start:stop]
            np.multiply(x.data[start:stop], negative_slope, out=blk)
            np.maximum(x.data[start:stop], blk, out=blk)
            out_data[start:stop] = blk @ a.data

        _parallel.run_chunked(forward_block, plan)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            # The slope factor stays in the compute dtype: python-float
            # operands would materialise a float64 (n, d) factor and run
            # the multiply off the float32 fast path, doubling the memory
            # traffic of the hottest backward in the attention stack.
            dt = x.data.dtype.type
            slope = dt(negative_slope)
            if plan is None:
                gact = _ws.ws_empty(x.data.shape,
                                    np.result_type(grad, a.data))
                if a.data.ndim == 1:
                    np.multiply(grad[:, None], a.data[None, :], out=gact)
                else:
                    np.matmul(grad, a.data.T, out=gact)
                # Masked in-place scale instead of multiplying by a dense
                # where(mask, 1, slope) factor: the positive entries need
                # no touch at all (x·1 is bitwise x), so this runs one
                # selective pass instead of materialising an (n, d)
                # factor and streaming it through a full multiply.
                np.multiply(gact, slope, out=gact, where=x.data <= 0)
                x._accumulate(gact)
            else:
                gact = _ws.ws_empty(x.data.shape,
                                    np.result_type(grad, a.data))
                at = a.data if a.data.ndim == 1 else a.data.T

                def backward_block(start: int, stop: int) -> None:
                    blk = gact[start:stop]
                    if a.data.ndim == 1:
                        np.multiply(grad[start:stop, None], at[None, :],
                                    out=blk)
                    else:
                        np.matmul(grad[start:stop], at, out=blk)
                    np.multiply(blk, slope, out=blk,
                                where=x.data[start:stop] <= 0)

                _parallel.run_chunked(backward_block, plan)
                x._accumulate(gact)
        if a.requires_grad:
            a._accumulate(act.T @ grad)

    return x._make_child(out_data, (x, a), backward)


def elu(x: ArrayLike, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit."""
    x = _as_tensor(x)
    neg = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    mask = x.data > 0
    out_data = np.where(mask, x.data, neg)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * np.where(mask, 1.0, neg + alpha))

    return x._make_child(out_data, (x,), backward)


def sigmoid(x: ArrayLike) -> Tensor:
    """Numerically stable logistic sigmoid."""
    x = _as_tensor(x)
    # Branch-free form of the usual two-case stabilisation: exp(-|x|) never
    # overflows, and the two cases reduce to a single select over the
    # numerator.  Bit-identical to the masked version, without the boolean
    # gather/scatter passes.
    e = np.exp(-np.abs(x.data))
    out_data = np.where(x.data >= 0, 1.0, e) / (1.0 + e)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * out_data * (1.0 - out_data))

    return x._make_child(out_data, (x,), backward)


def tanh(x: ArrayLike) -> Tensor:
    """Hyperbolic tangent."""
    x = _as_tensor(x)
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (1.0 - out_data ** 2))

    return x._make_child(out_data, (x,), backward)


def softmax(x: ArrayLike, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with the usual max-subtraction stabilisation.

    The normalisation sum accumulates in float64 regardless of the compute
    dtype (a no-op on float64 inputs); the result is cast back to the
    input's dtype at the boundary.
    """
    x = _as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    denom = e.sum(axis=axis, keepdims=True, dtype=ACCUM_DTYPE)
    out_data = np.asarray(e / denom, dtype=x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        # dL/dx = s * (g - sum(g * s))
        dot = (grad * out_data).sum(axis=axis, keepdims=True,
                                    dtype=ACCUM_DTYPE)
        dot = dot.astype(grad.dtype, copy=False)
        x._accumulate(out_data * (grad - dot))

    return x._make_child(out_data, (x,), backward)


def log_softmax(x: ArrayLike, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``; preferred input to NLL-style losses.

    As with :func:`softmax`, the partition-function sum accumulates in
    float64 and casts back at the boundary.
    """
    x = _as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True,
                                       dtype=ACCUM_DTYPE))
    out_data = shifted - log_z.astype(x.data.dtype, copy=False)
    # The cached softmax exists only for the backward closure — skip the
    # exp pass entirely on the inference path.
    soft = np.exp(out_data) if _grad.grad_enabled() else None

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return x._make_child(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Structural
# ---------------------------------------------------------------------------
def concat(tensors: Sequence[ArrayLike], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [_as_tensor(t) for t in tensors]
    arrays = [t.data for t in tensors]
    ws = _ws.active_workspace()
    if ws is None or any(a.dtype.kind != "f" for a in arrays):
        out_data = np.concatenate(arrays, axis=axis)
    else:
        ax = axis % arrays[0].ndim
        shape = list(arrays[0].shape)
        shape[ax] = sum(a.shape[ax] for a in arrays)
        out_data = np.concatenate(
            arrays, axis=axis,
            out=ws.take(tuple(shape), np.result_type(*arrays)))
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    anchor = tensors[0]
    return anchor._make_child(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.split(grad, len(tensors), axis=axis)
        for t, slab in zip(tensors, slabs):
            if t.requires_grad:
                t._accumulate(np.squeeze(slab, axis=axis))

    anchor = tensors[0]
    return anchor._make_child(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select: ``a`` where ``condition`` else ``b``.

    ``condition`` is a plain boolean array (it carries no gradient).
    """
    a, b = _as_tensor(a), _as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(np.where(cond, grad, 0.0))
        if b.requires_grad:
            b._accumulate(np.where(cond, 0.0, grad))

    return a._make_child(out_data, (a, b), backward)


def gather_rows(x: ArrayLike, index: np.ndarray) -> Tensor:
    """Select rows ``x[index]``; the backward scatters gradients back.

    This is the "lift node features onto edges" primitive of message passing.
    """
    x = _as_tensor(x)
    idx = np.asarray(index, dtype=np.int64)
    out_data = _gather_rows_data(x.data, idx)

    def backward(grad: np.ndarray) -> None:
        if idx.ndim == 1 and _plans.fast_kernels_enabled():
            x._accumulate(_plans.scatter_add_rows(grad, idx,
                                                  x.data.shape[0]))
        else:
            full = np.zeros_like(x.data)
            np.add.at(full, idx, grad)
            x._accumulate(full)

    return x._make_child(out_data, (x,), backward)


def dropout(x: ArrayLike, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``p``, rescale the rest.

    A no-op when ``training`` is False or ``p == 0``.
    """
    x = _as_tensor(x)
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    # The mask is drawn in float64 and thresholded before the cast, so the
    # same seed keeps the same units at either compute dtype.
    keep = (rng.random(x.data.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    out_data = x.data * keep

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * keep)

    return x._make_child(out_data, (x,), backward)


def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Matrix product (functional alias for the ``@`` operator)."""
    return _as_tensor(a) @ _as_tensor(b)


def square_norm(x: ArrayLike, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Squared L2 norm along ``axis``."""
    x = _as_tensor(x)
    return (x * x).sum(axis=axis, keepdims=keepdims)


def affine(x: ArrayLike, weight: Tensor, bias: Optional[Tensor]) -> Tensor:
    """``x @ weight + bias`` as one autograd node.

    The compositional spelling allocates the matmul output, then a second
    ``(n, d)`` array for the bias add; here the bias is added in place on
    the fresh matmul result.  Backward is the standard affine VJP: the
    bias gradient is the column sum of ``grad`` (what the broadcast add
    node's unbroadcast would compute).
    """
    x = _as_tensor(x)
    if x.data.ndim != 2 or not _plans.fast_kernels_enabled():
        out = x @ weight
        return out + bias if bias is not None else out
    # Row-block chunking: the plan is fixed at forward time (a pure
    # function of the row count and the configured worker count) and
    # reused by the backward closure, so forward and backward block
    # identically and serial_execution() reproduces the pooled result
    # bit for bit.  plan=None (small input or one worker) is the
    # unchunked kernel, unchanged from the pre-parallel path.
    plan = _parallel.chunk_plan(x.data.shape[0])
    out_shape = (x.data.shape[0], weight.data.shape[1])
    out_dtype = np.result_type(x.data, weight.data)
    if plan is None:
        out_data = np.matmul(x.data, weight.data,
                             out=_ws.ws_out(out_shape, out_dtype))
        if bias is not None:
            out_data += bias.data
    else:
        out_data = _ws.ws_empty(out_shape, out_dtype)

        def forward_block(start: int, stop: int) -> None:
            np.matmul(x.data[start:stop], weight.data,
                      out=out_data[start:stop])
            if bias is not None:
                out_data[start:stop] += bias.data

        _parallel.run_chunked(forward_block, plan)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            gx = _ws.ws_empty(x.data.shape,
                              np.result_type(grad, weight.data))
            if plan is None:
                np.matmul(grad, weight.data.T, out=gx)
            else:
                wt = weight.data.T

                def backward_block(start: int, stop: int) -> None:
                    np.matmul(grad[start:stop], wt, out=gx[start:stop])

                _parallel.run_chunked(backward_block, plan)
            x._accumulate(gx)
        if weight.requires_grad:
            weight._accumulate(x.data.T @ grad)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return x._make_child(out_data, parents, backward)


def pair_dot(x: ArrayLike, index_a: np.ndarray,
             index_b: np.ndarray) -> Tensor:
    """``out[p] = x[index_a[p]] · x[index_b[p]]`` as one autograd node.

    Fused form of ``rowwise_dot(gather_rows(x, a), gather_rows(x, b))``:
    the compositional spelling creates three graph nodes and four
    ``(P, d)`` temporaries on the backward pass, while the pair lists this
    op serves (decoder logits over sampled edges, the ``f_φ^c`` linearity
    term over ego-network pairs) sit on the training hot path.  The fused
    backward is the exact same vector-Jacobian product: scatter
    ``g_p · x[b_p]`` into rows ``a_p`` and ``g_p · x[a_p]`` into ``b_p``.
    """
    x = _as_tensor(x)
    idx_a = np.asarray(index_a, dtype=np.int64)
    idx_b = np.asarray(index_b, dtype=np.int64)
    if idx_a.shape != idx_b.shape or idx_a.ndim != 1:
        raise ValueError(f"pair_dot expects matching 1-D index arrays, got "
                         f"{idx_a.shape} and {idx_b.shape}")
    xa = _gather_rows_data(x.data, idx_a)
    xb = _gather_rows_data(x.data, idx_b)
    out_data = np.einsum("ij,ij->i", xa, xb,
                         out=_ws.ws_out((xa.shape[0],),
                                        np.result_type(xa, xb)))

    def backward(grad: np.ndarray) -> None:
        g = grad[:, None]
        n = x.data.shape[0]
        if _plans.fast_kernels_enabled():
            # One scatter over the concatenated [a-ids, b-ids] instead of
            # two over the halves: one plan/CSR sweep, one accumulator.
            # The joined ids are identity-cached, so stable pair lists
            # keep hitting one cached plan across steps.
            p = idx_a.shape[0]
            vals = _ws.ws_empty((2 * p,) + xb.shape[1:],
                                np.result_type(g, xb))
            np.multiply(g, xb, out=vals[:p])
            np.multiply(g, xa, out=vals[p:])
            gx = _plans.scatter_add_rows(
                vals, _plans.joined_pair_ids(idx_a, idx_b), n)
        else:
            gx = np.zeros_like(x.data)
            np.add.at(gx, idx_a, g * xb)
            np.add.at(gx, idx_b, g * xa)
        x._accumulate(gx)

    return x._make_child(out_data, (x,), backward)


def rowwise_dot(a: ArrayLike, b: ArrayLike) -> Tensor:
    """``out[i] = a[i] · b[i]`` for two ``(n, d)`` tensors.

    Fused form of ``(a * b).sum(axis=-1)``: the einsum forward never
    materialises the ``(n, d)`` product in the graph, and the backward is a
    single broadcasted multiply per operand instead of a mul-backward plus
    a sum-backward.  This pattern sits on the training hot path (decoder
    logits over sampled edge pairs, attention scores over egonet pairs).
    """
    a, b = _as_tensor(a), _as_tensor(b)
    if a.data.ndim != 2 or a.data.shape != b.data.shape:
        raise ValueError(f"rowwise_dot expects matching (n, d) operands, "
                         f"got {a.data.shape} and {b.data.shape}")
    out_data = np.einsum("ij,ij->i", a.data, b.data,
                         out=_ws.ws_out((a.data.shape[0],),
                                        np.result_type(a.data, b.data)))

    def backward(grad: np.ndarray) -> None:
        g = grad[:, None]
        if a.requires_grad:
            a._accumulate(g * b.data)
        if b.requires_grad:
            b._accumulate(g * a.data)

    return a._make_child(out_data, (a, b), backward)
