"""Replayable autograd tape for plan-captured training steps.

PR 4 made *inference* allocation-free: under the frozen-structure contract
of the batch caches, a forward is the same kernel sequence every time, so
buffers and structural stages can be recorded once and replayed.  Training
has the same structure-stability (the coarsening hierarchy a batch induces
does not change between visits of the same cached batch) but not value
stability — weights move every step — so what *can* be captured is the
autograd graph itself: which tensors get created, in which order, and in
which order their backward closures fire.

A :class:`TrainingTape` exploits exactly that.  The forward **re-executes
in full on every step** (values must be recomputed); what replay removes is
the per-step Python graph bookkeeping around it:

* **Capture pass** — ops run normally; every grad-wired result tensor is
  appended to ``tape.nodes`` in creation order.  The backward pass runs the
  standard topological sweep but records which nodes fired, in firing
  order, into ``tape.order``.
* **Replay pass** — :meth:`Tensor._make_child` hands back the *stable node
  objects* recorded at capture, rebinding ``data``/``_backward`` and
  clearing ``grad``.  No parent tuples are built, no DAG is topologically
  sorted: backward simply fires the recorded ``tape.order``.  Because the
  firing order is the capture pass's own topological order, gradient
  *accumulation* order is identical, which keeps replayed training bitwise
  equal to the uncaptured path (float32 summation is order-sensitive).
* **Shape tolerance** — node *shapes* are allowed to drift between steps.
  AdamGNN's coarsening is data-dependent: the ego selection moves with the
  learned fitness, so pooled-level array sizes wobble by a few elements
  every step even though the op **sequence** — which kernels run, in which
  order, wired to which parents — is identical.  Replay therefore rebinds
  whatever data the re-executed forward produced and validates the things
  that actually certify sequence stability: per-node dtype and the total
  node count.

Replay is *validated*, never trusted: a dtype mismatch at any node or an
op sequence that runs long or short raises :class:`TapeInvalid`, and the
trainer falls back to the uncaptured path for that step after restoring
the step's RNG state (a partial forward has already consumed draws).

The tape hook lives at the single ``Tensor._make_child`` choke point — the
same gate the no-grad mode and the NaN sanitizer use — and costs one
thread-local read per grad-wired op when no tape is active.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List, Optional

import numpy as np

__all__ = ["TapeInvalid", "TrainingTape", "active_tape"]


class TapeInvalid(RuntimeError):
    """A replayed step diverged from its captured plan.

    Raised when the op sequence runs long or short, or a node's dtype no
    longer matches the recording.  Callers treat this as "drop the tape
    and run the step uncaptured", not as an error: the capture contract
    (stable batch, stable op sequence) is checked, not assumed.
    """


class TrainingTape:
    """Recorded autograd graph of one training step over one fixed batch.

    ``nodes``
        Every grad-wired tensor of the captured step, in creation order.
        On replay these exact objects are handed back to the running
        forward with their ``data`` rebound.
    ``order``
        The subset of ``nodes`` whose backward closures fired during the
        capture backward, in firing order (the capture pass's reverse
        topological order).  ``None`` until a capture completes — that is
        also the "has this tape captured yet?" flag.
    """

    __slots__ = ("nodes", "order", "cursor", "mode", "captures", "replays")

    #: not active / recording / handing back recorded nodes
    IDLE, CAPTURE, REPLAY = 0, 1, 2

    def __init__(self) -> None:
        self.nodes: List = []
        self.order: Optional[List] = None
        self.cursor: int = 0
        self.mode: int = TrainingTape.IDLE
        self.captures: int = 0
        self.replays: int = 0

    @property
    def captured(self) -> bool:
        return self.order is not None

    # ------------------------------------------------------------------
    # Hook entry points (called from Tensor._make_child)
    # ------------------------------------------------------------------
    def _replay_node(self, data, backward):
        """Rebind and return the next recorded node for a replayed op."""
        i = self.cursor
        nodes = self.nodes
        if i >= len(nodes):
            raise TapeInvalid(
                f"replayed step created more grad nodes than the captured "
                f"{len(nodes)} — op sequence is not stable for this batch")
        node = nodes[i]
        self.cursor = i + 1
        data = np.asarray(data)
        # Shapes may drift (adaptive pooling resizes with the learned
        # fitness); dtype may not — a dtype change means a different
        # compute configuration is running against this tape.
        if node.data.dtype != data.dtype:
            raise TapeInvalid(
                f"node {i} changed dtype from {node.data.dtype} to "
                f"{data.dtype} between capture and replay")
        node.data = data
        node.grad = None
        node._grad_owned = False
        node._backward = backward
        return node

    # ------------------------------------------------------------------
    # Pass management
    # ------------------------------------------------------------------
    @contextmanager
    def active_pass(self) -> Iterator["TrainingTape"]:
        """Install this tape for the current thread's ops.

        Capture mode until a capture has completed (``order`` recorded),
        replay mode afterwards.  A pass that exits without completing its
        backward (exception, :class:`TapeInvalid`) leaves the tape in a
        half-recorded state — callers must discard it, which the trainer's
        capture registry does on any failure.
        """
        if _state.active is not None:
            raise RuntimeError("training tapes do not nest")
        self.mode = (TrainingTape.REPLAY if self.order is not None
                     else TrainingTape.CAPTURE)
        if self.mode == TrainingTape.CAPTURE:
            self.nodes = []
        self.cursor = 0
        _state.active = self
        try:
            yield self
        finally:
            _state.active = None
            self.mode = TrainingTape.IDLE

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward(self, loss) -> None:
        """Run the step's backward pass under this tape's active pass.

        Capture mode performs the exact :meth:`Tensor.backward` sweep —
        same topological order, same skip conditions — while recording the
        firing sequence.  Replay mode re-fires that recorded sequence:
        identical accumulation order, no DAG walk.  Closures are dropped
        after the pass either way (they retain forward intermediates, and
        with a gradient arena active those are recyclable slots — see
        replint RL005).
        """
        if self.mode == TrainingTape.CAPTURE:
            loss._accumulate(np.ones_like(loss.data))
            order = loss._topological_order()
            fired: List = []
            for node in reversed(order):
                if node._backward is not None and node.grad is not None:
                    node._backward(node.grad)
                    fired.append(node)
                node._backward = None
                node._parents = ()
            self.order = fired
            self.captures += 1
            return
        if self.mode != TrainingTape.REPLAY:
            raise RuntimeError("tape.backward() outside an active pass")
        if self.cursor != len(self.nodes):
            raise TapeInvalid(
                f"replayed step created {self.cursor} grad nodes where the "
                f"capture recorded {len(self.nodes)}")
        loss._accumulate(np.ones_like(loss.data))
        for node in self.order:
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
        for node in self.nodes:
            node._backward = None
        self.replays += 1

    def stats(self) -> dict:
        return {"nodes": len(self.nodes),
                "fired": len(self.order) if self.order is not None else 0,
                "captures": self.captures, "replays": self.replays}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "captured" if self.captured else "blank"
        return (f"TrainingTape({state}, nodes={len(self.nodes)}, "
                f"replays={self.replays})")


class _TapeState(threading.local):
    """Per-thread active tape.  Thread-local for the same reason the
    workspace is: a serving or data-parallel worker must never record its
    ops onto another thread's step."""

    active: Optional[TrainingTape] = None


_state = _TapeState()


def active_tape() -> Optional[TrainingTape]:
    """The calling thread's active training tape (``None`` normally)."""
    return _state.active
