"""Precision policy for the tensor/autograd stack.

Everything in this library used to compute in hardwired ``np.float64``.
The AdamGNN training objectives tolerate far less precision than that, and
on a memory-bandwidth-bound NumPy substrate halving the element width is a
direct throughput win, so the compute dtype is now a *policy*:

* :func:`get_default_dtype` / :func:`set_default_dtype` read and set the
  compute dtype (``float64`` out of the box, so library users and the
  finite-difference gradient checks see unchanged behaviour).  The policy
  is thread-local — each serving worker scopes its own precision — with
  fresh threads starting at the library default;
* :func:`default_dtype` scopes a dtype change to a ``with`` block — this is
  what the trainers use to run a whole fit at ``TrainConfig(dtype=...)``;
* :data:`ACCUM_DTYPE` names the accumulation dtype (always ``float64``)
  used by the numerically sensitive scalar reductions — the KL loss, the
  pair-sampled BCE, softmax normalisation sums, Adam's second moments —
  which accumulate in float64 regardless of the compute dtype and cast
  back at the boundary.

The policy governs *coercion points*: what ``Tensor(...)`` makes of
python scalars/lists/int arrays, what the weight initialisers and
structural helpers (``np.ones`` edge weights, one-hot features) emit.
Arrays that are already float32/float64 flow through ops unchanged —
gradients and op outputs inherit their inputs' dtype rather than minting
the default (see ``tensor.py``/``ops.py``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

DTypeLike = Union[str, type, np.dtype]

#: Accumulation dtype for numerically sensitive reductions.  Never changes:
#: reduced-precision *storage* is a bandwidth decision, reduced-precision
#: *accumulation* is a correctness decision, and the losses this library
#: reproduces (Eqs. 5-7) sum thousands of small terms.
ACCUM_DTYPE = np.float64

#: The dtypes the compute policy may take.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

class _DtypeState(threading.local):
    """Per-thread compute dtype.  Thread-local for the same reason as the
    grad-mode switch (see ``_grad_mode.py``): serving workers scope their
    own precision per forward, and a worker's ``default_dtype`` block must
    not bleed into a concurrent training loop.  Fresh threads start at the
    library default (the class attribute), not at whatever the spawning
    thread happened to scope."""

    value: np.dtype = np.dtype(np.float64)


_state = _DtypeState()


def resolve_dtype(dtype: DTypeLike) -> np.dtype:
    """Normalise a user-facing dtype spec to a supported ``np.dtype``.

    Accepts ``"float32"``/``"float64"``, ``np.float32``/``np.float64`` and
    dtype objects; anything else raises ``ValueError``.
    """
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported compute dtype {dtype!r}; choose one of "
            f"{[d.name for d in SUPPORTED_DTYPES]}")
    return resolved


def get_default_dtype() -> np.dtype:
    """The current compute dtype (``float64`` unless configured)."""
    return _state.value


def set_default_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the calling thread's compute dtype; returns the previous one."""
    previous = _state.value
    _state.value = resolve_dtype(dtype)
    return previous


@contextmanager
def default_dtype(dtype: DTypeLike) -> Iterator[np.dtype]:
    """Scope the compute dtype to a ``with`` block (restores on exit)."""
    previous = set_default_dtype(dtype)
    try:
        yield _state.value
    finally:
        set_default_dtype(previous)


def as_compute_array(data, dtype: np.dtype = None) -> np.ndarray:
    """``np.asarray`` with float coercion to the (given or policy) dtype.

    Float arrays already in a supported dtype are cast only when they
    differ from the target (so an explicit target of ``None`` plus an
    already-float64 input under a float64 policy is a no-copy pass).
    Integer and boolean arrays pass through untouched — they are index /
    mask data, not compute data.
    """
    arr = np.asarray(data)
    if arr.dtype.kind in "iub":
        return arr
    target = _state.value if dtype is None else dtype
    if arr.dtype != target:
        arr = arr.astype(target)
    return arr
