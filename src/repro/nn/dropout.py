"""Dropout module with an explicit random stream."""

from __future__ import annotations

import numpy as np

from ..tensor.random import make_rng

from ..tensor import Tensor, dropout
from .module import Module


class Dropout(Module):
    """Inverted dropout; active only in train mode.

    Parameters
    ----------
    p:
        Drop probability in ``[0, 1)``.
    rng:
        Random stream for the masks.  Each module owns its stream so that
        experiment seeds reproduce exactly.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else make_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.p, self.rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
