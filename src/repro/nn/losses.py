"""Loss functions.

All losses return scalar tensors and accept an optional boolean/index mask so
the semi-supervised node-classification protocol (loss on the training nodes
only) is expressed directly.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..tensor import ACCUM_DTYPE, Tensor, clip, log, log_softmax, sigmoid


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  mask: Optional[np.ndarray] = None) -> Tensor:
    """Mean softmax cross-entropy between row logits and integer labels.

    Parameters
    ----------
    logits:
        ``(n, num_classes)`` unnormalised scores.
    labels:
        ``(n,)`` integer class labels.
    mask:
        Optional boolean mask or index array selecting the rows that
        contribute to the loss (e.g. training nodes).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if mask is not None:
        logits = logits[np.asarray(mask)]
        labels = labels[np.asarray(mask)]
    if logits.shape[0] == 0:
        raise ValueError("cross_entropy received an empty selection")
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor,
                                     targets: np.ndarray) -> Tensor:
    """Numerically stable mean BCE on raw logits.

    Uses the identity ``max(x,0) - x*t + log(1 + exp(-|x|))`` so large
    positive/negative logits do not overflow.  The fast path is a single
    fused node with the analytic gradient ``(σ(x) − t) / N`` — the same
    vector-Jacobian product autograd derives for the compositional form,
    which builds eight graph nodes per call on the sampled-edge hot path.
    The compositional spelling is retained under
    :func:`repro.tensor.naive_kernels` so tests can compare the two.
    """
    x = logits if isinstance(logits, Tensor) else Tensor(logits)
    # Targets adopt the logits' dtype so a float32 graph stays float32.
    targets = np.asarray(targets, dtype=x.data.dtype)
    from ..tensor import fast_kernels_enabled
    if not fast_kernels_enabled():
        # max(x, 0) as 0.5*(x + |x|) keeps everything inside autograd.
        from ..tensor import absolute, exp
        abs_x = absolute(x)
        loss = (abs_x + x) * 0.5 - x * Tensor(targets, dtype=x.data.dtype) \
            + log(exp(-abs_x) + 1.0)
        return loss.mean()

    data = x.data
    e = np.exp(-np.abs(data))
    loss_terms = np.maximum(data, 0.0) - data * targets + np.log1p(e)
    # The scalar reduction accumulates in ACCUM_DTYPE, cast at the boundary.
    out_data = np.asarray(loss_terms.mean(dtype=ACCUM_DTYPE),
                          dtype=data.dtype)
    count = max(loss_terms.size, 1)

    def backward(grad: np.ndarray) -> None:
        prob = np.where(data >= 0, 1.0, e) / (1.0 + e)
        x._accumulate((prob - targets) * (float(grad) / count))

    return x._make_child(out_data, (x,), backward)


def binary_cross_entropy(probs: Tensor, targets: np.ndarray,
                         eps: float = 1e-12) -> Tensor:
    """Mean BCE on probabilities already in ``(0, 1)``."""
    p = clip(probs, eps, 1.0 - eps)
    # Targets adopt the probabilities' dtype so a float32 graph stays f32.
    t = Tensor(np.asarray(targets), dtype=p.data.dtype)
    return -(t * log(p) + (1.0 - t) * log(1.0 - p)).mean()


def mse(pred: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(np.asarray(target))
    diff = pred - target_t
    return (diff * diff).mean()


def kl_divergence(p: np.ndarray, q: Tensor, eps: float = 1e-12) -> Tensor:
    """``KL(P || Q) = Σ p log(p/q)`` with a fixed target distribution P.

    This is the form of Eq. 5 in the paper: P is the (detached) sharpened
    target distribution and Q the current soft assignment, so gradients flow
    only through Q.
    """
    # The detached target's entropy term accumulates in ACCUM_DTYPE; the
    # cross term joins the graph in Q's dtype.
    p = np.asarray(p, dtype=ACCUM_DTYPE)
    q_safe = clip(q, eps, 1.0)
    p_term = np.where(p > 0, p * np.log(np.maximum(p, eps)), 0.0).sum()
    cross = (Tensor(p, dtype=q_safe.data.dtype) * log(q_safe)).sum()
    return Tensor(float(p_term), dtype=q_safe.data.dtype) - cross
