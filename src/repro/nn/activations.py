"""Activation modules (thin wrappers over the functional ops)."""

from __future__ import annotations

from ..tensor import Tensor, elu, leaky_relu, relu, sigmoid, tanh
from .module import Module


class ReLU(Module):
    """Module form of :func:`repro.tensor.relu`."""

    def forward(self, x: Tensor) -> Tensor:
        return relu(x)


class LeakyReLU(Module):
    """Module form of :func:`repro.tensor.leaky_relu`."""

    def __init__(self, negative_slope: float = 0.2):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return leaky_relu(x, self.negative_slope)

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class Sigmoid(Module):
    """Module form of :func:`repro.tensor.sigmoid`."""

    def forward(self, x: Tensor) -> Tensor:
        return sigmoid(x)


class Tanh(Module):
    """Module form of :func:`repro.tensor.tanh`."""

    def forward(self, x: Tensor) -> Tensor:
        return tanh(x)


class ELU(Module):
    """Module form of :func:`repro.tensor.elu`."""

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return elu(x, self.alpha)
