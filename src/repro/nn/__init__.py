"""Neural-network modules built on the autograd engine."""

from .module import Module, Parameter
from .linear import Linear
from .activations import ELU, LeakyReLU, ReLU, Sigmoid, Tanh
from .dropout import Dropout
from .container import ModuleList, Sequential
from .norm import BatchNorm1d, LayerNorm
from . import init
from .losses import (binary_cross_entropy, binary_cross_entropy_with_logits,
                     cross_entropy, kl_divergence, mse)

__all__ = [
    "Module", "Parameter", "Linear",
    "ELU", "LeakyReLU", "ReLU", "Sigmoid", "Tanh",
    "Dropout", "ModuleList", "Sequential",
    "BatchNorm1d", "LayerNorm", "init",
    "binary_cross_entropy", "binary_cross_entropy_with_logits",
    "cross_entropy", "kl_divergence", "mse",
]
