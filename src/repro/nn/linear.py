"""Dense affine layer."""

from __future__ import annotations

import numpy as np

from ..tensor.random import make_rng

from ..tensor import Tensor, affine
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to learn an additive bias (default True).
    rng:
        Generator used for Glorot-uniform weight initialisation.  Passing an
        explicit generator keeps whole-model init deterministic.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else make_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform(rng, in_features, out_features))
        if bias:
            self.bias = Parameter(init.zeros((out_features,)))
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        return affine(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features}, "
                f"bias={self.bias is not None})")
