"""Normalisation layers (used by GIN MLPs and the 3WL-GNN blocks)."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, sqrt
from . import init
from .module import Module, Parameter


class LayerNorm(Module):
    """Normalise the last dimension to zero mean / unit variance, then scale."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(init.ones((dim,)))
        self.bias = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / sqrt(var + self.eps)
        return normed * self.weight + self.bias

    def __repr__(self) -> str:
        return f"LayerNorm(dim={self.dim}, eps={self.eps})"


class BatchNorm1d(Module):
    """Batch normalisation over the row dimension with running statistics.

    In train mode, statistics come from the batch and the running buffers
    are updated with exponential momentum; in eval mode the running buffers
    are used, matching the PyTorch semantics the reference models rely on.
    """

    def __init__(self, dim: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((dim,)))
        self.bias = Parameter(init.zeros((dim,)))
        self.register_buffer("running_mean",
                             np.zeros(dim, dtype=self.weight.data.dtype))
        self.register_buffer("running_var",
                             np.ones(dim, dtype=self.weight.data.dtype))

    def forward(self, x: Tensor) -> Tensor:
        if self.training and x.shape[0] > 1:
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            self.set_buffer("running_mean",
                            (1 - self.momentum) * self.running_mean
                            + self.momentum * mean.data.reshape(-1))
            self.set_buffer("running_var",
                            (1 - self.momentum) * self.running_var
                            + self.momentum * var.data.reshape(-1))
        else:
            mean = Tensor(self.running_mean.reshape(1, -1),
                          dtype=self.running_mean.dtype)
            centered = x - mean
            var = Tensor(self.running_var.reshape(1, -1),
                         dtype=self.running_var.dtype)
        normed = centered / sqrt(var + self.eps)
        return normed * self.weight + self.bias

    def __repr__(self) -> str:
        return f"BatchNorm1d(dim={self.dim}, eps={self.eps}, momentum={self.momentum})"
