"""Module and parameter containers, mirroring the ``torch.nn`` contract.

A :class:`Module` automatically registers any :class:`Parameter` or child
:class:`Module` assigned as an attribute, exposes recursive parameter
iteration for optimisers, tracks train/eval mode (dropout behaviour), and
supports state-dict save/load for checkpointing experiments.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor, no_grad


class Parameter(Tensor):
    """A :class:`Tensor` that is a trainable leaf of a :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural-network components.

    Subclasses implement :meth:`forward`; calling the module invokes it.
    Attribute assignment registers parameters and sub-modules so that
    :meth:`parameters` walks the whole tree.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Optional[Parameter]) -> None:
        """Explicitly register (or unregister with ``None``) a parameter."""
        if param is None:
            self._parameters.pop(name, None)
            object.__setattr__(self, name, None)
        else:
            setattr(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state saved/restored with the model.

        Buffers (e.g. BatchNorm running statistics) are included in
        :meth:`state_dict` so that checkpoint restore — in particular the
        early-stopping best-epoch restore — keeps weights and statistics
        consistent.
        """
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer's value in place of the registry."""
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs, depth-first."""
        for name, value in self._buffers.items():
            yield (f"{prefix}{name}", value)
        for name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All trainable parameters in this module and its children."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.data.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set train/eval mode recursively (affects dropout etc.)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set eval mode (equivalent to ``train(False)``)."""
        return self.train(False)

    @contextmanager
    def inference(self) -> Iterator["Module"]:
        """Eval mode + :func:`~repro.tensor.no_grad`, restored on exit.

        The one-liner for serving and evaluation loops::

            with model.inference():
                logits, _ = model(batch)

        Forwards inside run grad-free (no parent tracking, no ``_backward``
        closures) and with dropout disabled; the previous training flag and
        grad mode come back afterwards, even on exceptions.
        """
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                yield self
        finally:
            if was_training:
                self.train(True)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def astype(self, dtype) -> "Module":
        """Cast every float parameter and buffer to ``dtype``, in place.

        This is how a trainer moves a model onto the configured compute
        precision (``TrainConfig(dtype=...)``).  Integer buffers (index
        structures) are untouched; casts to the current dtype are no-ops,
        so calling it redundantly is free.  Returns ``self`` for chaining.
        """
        from ..tensor.precision import resolve_dtype
        target = resolve_dtype(dtype)
        for module in self.modules():
            for param in module._parameters.values():
                if param.data.dtype.kind == "f" and param.data.dtype != target:
                    param.data = param.data.astype(target)
                    param.zero_grad()
            for name, buf in list(module._buffers.items()):
                if buf.dtype.kind == "f" and buf.dtype != target:
                    module.set_buffer(name, buf.astype(target))
        return self

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter and buffer array, keyed by dotted name.

        Buffers are stored under a ``buffer:`` key prefix so they can never
        collide with parameter names.
        """
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, value in self.named_buffers():
            state[f"buffer:{name}"] = value.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter and buffer arrays produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        expected = set(own) | {f"buffer:{n}" for n in own_buffers}
        missing = expected - set(state)
        unexpected = set(state) - expected
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {param.data.shape}")
            param.data = value.astype(param.data.dtype).copy()
        for name in own_buffers:
            self._load_buffer(name, np.asarray(state[f"buffer:{name}"]))

    def _load_buffer(self, dotted: str, value: np.ndarray) -> None:
        module: Module = self
        *path, leaf = dotted.split(".")
        for part in path:
            module = module._modules[part]
        module.set_buffer(leaf, value.copy())

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module's output; subclasses must override."""
        raise NotImplementedError(f"{type(self).__name__} must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {child!r}".replace("\n", "\n  ")
                       for name, child in self._modules.items()]
        body = "\n".join(child_lines)
        if body:
            return f"{type(self).__name__}(\n{body}\n)"
        return f"{type(self).__name__}()"
