"""Weight initialisers.

Glorot (Xavier) initialisation is the PyTorch-Geometric default for GCN/GAT
weight matrices and is what the paper's reference implementation uses, so it
is the default throughout this library.
"""

from __future__ import annotations

import math

import numpy as np

from ..tensor import DEFAULT_DTYPE


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape: tuple | None = None) -> np.ndarray:
    """Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    bound = math.sqrt(6.0 / float(fan_in + fan_out))
    shape = shape if shape is not None else (fan_in, fan_out)
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def glorot_normal(rng: np.random.Generator, fan_in: int, fan_out: int,
                  shape: tuple | None = None) -> np.ndarray:
    """Xavier/Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    std = math.sqrt(2.0 / float(fan_in + fan_out))
    shape = shape if shape is not None else (fan_in, fan_out)
    return (rng.normal(0.0, std, size=shape)).astype(DEFAULT_DTYPE)


def kaiming_uniform(rng: np.random.Generator, fan_in: int,
                    shape: tuple) -> np.ndarray:
    """He/Kaiming uniform for ReLU fan-in scaling."""
    bound = math.sqrt(6.0 / float(fan_in))
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def zeros(shape: tuple) -> np.ndarray:
    """All-zero initialiser (biases)."""
    return np.zeros(shape, dtype=DEFAULT_DTYPE)


def ones(shape: tuple) -> np.ndarray:
    """All-one initialiser (norm scales)."""
    return np.ones(shape, dtype=DEFAULT_DTYPE)
