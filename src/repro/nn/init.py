"""Weight initialisers.

Glorot (Xavier) initialisation is the PyTorch-Geometric default for GCN/GAT
weight matrices and is what the paper's reference implementation uses, so it
is the default throughout this library.

All initialisers emit the compute-policy dtype (or an explicit ``dtype``)
while *drawing* in float64 — a fixed seed therefore produces the same
weights at float32 and float64, differing only by the final rounding (see
:func:`repro.tensor.random.draw_uniform`).
"""

from __future__ import annotations

import math

import numpy as np

from ..tensor.precision import get_default_dtype, resolve_dtype
from ..tensor.random import draw_normal, draw_uniform


def _dtype(dtype) -> np.dtype:
    return get_default_dtype() if dtype is None else resolve_dtype(dtype)


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape: tuple | None = None, dtype=None) -> np.ndarray:
    """Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    bound = math.sqrt(6.0 / float(fan_in + fan_out))
    shape = shape if shape is not None else (fan_in, fan_out)
    return draw_uniform(rng, -bound, bound, shape, dtype=_dtype(dtype))


def glorot_normal(rng: np.random.Generator, fan_in: int, fan_out: int,
                  shape: tuple | None = None, dtype=None) -> np.ndarray:
    """Xavier/Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    std = math.sqrt(2.0 / float(fan_in + fan_out))
    shape = shape if shape is not None else (fan_in, fan_out)
    return draw_normal(rng, 0.0, std, shape, dtype=_dtype(dtype))


def kaiming_uniform(rng: np.random.Generator, fan_in: int,
                    shape: tuple, dtype=None) -> np.ndarray:
    """He/Kaiming uniform for ReLU fan-in scaling."""
    bound = math.sqrt(6.0 / float(fan_in))
    return draw_uniform(rng, -bound, bound, shape, dtype=_dtype(dtype))


def zeros(shape: tuple, dtype=None) -> np.ndarray:
    """All-zero initialiser (biases)."""
    return np.zeros(shape, dtype=_dtype(dtype))


def ones(shape: tuple, dtype=None) -> np.ndarray:
    """All-one initialiser (norm scales)."""
    return np.ones(shape, dtype=_dtype(dtype))
