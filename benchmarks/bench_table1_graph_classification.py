"""Table 1 — graph classification accuracy on six datasets × eight models.

Regenerates the paper's main graph-level comparison: GIN, 3WL-GNN,
SortPool, DiffPool, TopKPool, SAGPool, StructPool and AdamGNN on the six
(synthetic stand-in) TU datasets.  Expected shape: AdamGNN wins most
datasets; StructPool is the strongest baseline and may take PROTEINS, as
in the paper.
"""

import pytest

from repro.training import (GRAPH_MODEL_NAMES, TrainConfig,
                            run_graph_classification)

from .common import PAPER_TABLE1, comparison_table, emit, is_smoke

DATASETS = ("nci1", "nci109", "dd", "mutag", "mutagenicity", "proteins")


#: 3WL-GNN's dense O(n³) blocks are ~50x costlier per epoch than the
#: sparse models on this CPU substrate; it gets a reduced epoch budget
#: (it converges quickly on these graph sizes — the paper likewise treats
#: it as the expensive expressive reference point).
EPOCH_OVERRIDES = {"3wl": (15, 8)}


def _config(model: str) -> TrainConfig:
    if is_smoke():
        return TrainConfig(epochs=2, patience=5, batch_size=32)
    epochs, patience = EPOCH_OVERRIDES.get(model, (80, 25))
    return TrainConfig(epochs=epochs, patience=patience, batch_size=32)


def _datasets():
    return ("mutag",) if is_smoke() else DATASETS


def generate_table1() -> str:
    """Run the full grid and render the measured-vs-paper table."""
    results: dict = {model: {} for model in GRAPH_MODEL_NAMES}
    for dataset in _datasets():
        for model in GRAPH_MODEL_NAMES:
            cell = run_graph_classification(dataset, model, seeds=(0,),
                                            config=_config(model))
            results[model][dataset] = cell.mean * 100.0
    return comparison_table(results, PAPER_TABLE1,
                            GRAPH_MODEL_NAMES, _datasets())


@pytest.mark.benchmark(group="table1")
def test_table1_graph_classification(benchmark):
    table = benchmark.pedantic(generate_table1, rounds=1, iterations=1)
    emit("Table 1: graph classification accuracy (%)", table)
    assert table
