"""Tables 6 & 7 — dataset statistics of the twelve benchmarks.

Prints the statistics of the synthetic stand-ins next to the paper's
published numbers; class/feature counts match exactly, sizes are scaled
(~4-6x smaller) per DESIGN.md.
"""

import pytest

from repro.datasets import (GRAPH_DATASET_NAMES, NODE_DATASET_NAMES,
                            format_graph_stats_table,
                            format_node_stats_table, graph_dataset_stats,
                            load_graph_dataset, load_node_dataset,
                            node_dataset_stats)

from .common import emit

PAPER_TABLE6 = """Paper (Table 6):
Dataset     #Nodes   #Edges  #Features  #Classes
acm          3,025   13,128      1,870         3
citeseer     3,327    4,552      3,703         6
cora         2,708    5,278      1,433         7
emails         799   10,182       N.A.        18
dblp         4,057    3,528        334         4
wiki         2,405   12,178      4,973        17"""

PAPER_TABLE7 = """Paper (Table 7):
Dataset        #Graphs  #Nodes(avg)  #Edges(avg)  #Features  #Classes
nci1             4,110        29.87        32.30         37         2
nci109           4,127        29.68        32.13         38         2
dd               1,178       284.32       715.66         89         2
mutag              188        17.93        19.79          7         2
mutagenicity     4,337        30.32        30.77         14         2
proteins         1,113        39.06        72.82         32         2"""


def generate_table6() -> str:
    rows = [node_dataset_stats(load_node_dataset(name, seed=0))
            for name in NODE_DATASET_NAMES]
    return (format_node_stats_table(rows) + "\n\n" + PAPER_TABLE6)


def generate_table7() -> str:
    rows = [graph_dataset_stats(load_graph_dataset(name, seed=0))
            for name in GRAPH_DATASET_NAMES]
    return (format_graph_stats_table(rows) + "\n\n" + PAPER_TABLE7)


@pytest.mark.benchmark(group="tables6-7")
def test_table6_node_dataset_stats(benchmark):
    table = benchmark.pedantic(generate_table6, rounds=1, iterations=1)
    emit("Table 6: node-task dataset statistics (synthetic stand-ins)",
         table)
    assert "acm" in table


@pytest.mark.benchmark(group="tables6-7")
def test_table7_graph_dataset_stats(benchmark):
    table = benchmark.pedantic(generate_table7, rounds=1, iterations=1)
    emit("Table 7: graph-task dataset statistics (synthetic stand-ins)",
         table)
    assert "mutag" in table
