"""Table 3 — ablation of the loss terms (Eq. 7).

Four configurations of ``L = L_task + γ·L_KL + δ·L_R`` on DBLP link
prediction, Citeseer node classification and Mutagenicity graph
classification.  Expected shape: L_R provides the larger gain (it fights
the over-smoothing the unpooling amplifies); the full model is best.

For link prediction ``L_task = L_R``, so the two middle rows are undefined
(marked "-"), exactly as in the paper.
"""

from typing import Dict, Optional

import pytest

from repro.training import (TrainConfig, run_graph_classification,
                            run_link_prediction, run_node_classification)

from .common import PAPER_TABLE3, emit, is_smoke

VARIANTS = {
    "task only": dict(use_kl=False, use_recon=False),
    "task + kl": dict(use_kl=True, use_recon=False),
    "task + recon": dict(use_kl=False, use_recon=True),
    "full": dict(use_kl=True, use_recon=True),
}


def _config(**flags) -> TrainConfig:
    if is_smoke():
        return TrainConfig(epochs=2, patience=5, batch_size=32, **flags)
    return TrainConfig(epochs=80, patience=25, batch_size=32, **flags)


def _cell(column: str, flags: dict) -> Optional[float]:
    if column == "dblp_lp":
        # For LP the task loss IS L_R, so only the KL flag varies; rows
        # "task + kl" and "task + recon" are not defined (paper leaves
        # them blank).
        if flags == VARIANTS["task + kl"] or flags == VARIANTS["task + recon"]:
            return None
        cfg = _config(use_kl=flags["use_kl"], use_recon=True)
        return run_link_prediction("dblp", "adamgnn", seeds=(0,),
                                   config=cfg).mean
    if column == "citeseer_nc":
        cfg = _config(**flags)
        return run_node_classification("citeseer", "adamgnn", seeds=(0,),
                                       config=cfg).mean * 100.0
    cfg = _config(**flags)
    return run_graph_classification("mutagenicity", "adamgnn", seeds=(0,),
                                    config=cfg).mean * 100.0


def generate_table3() -> str:
    columns = ("dblp_lp", "citeseer_nc", "mutagenicity_gc")
    if is_smoke():
        columns = ("citeseer_nc",)
    measured: Dict[str, Dict[str, float]] = {}
    for name, flags in VARIANTS.items():
        measured[name] = {}
        for column in columns:
            measured[name][column] = _cell(column, flags)

    width = 24
    header = f"{'loss variant':<16}" + "".join(f"{c:>{width}}"
                                               for c in columns)
    lines = [header, "-" * len(header)]
    for name in VARIANTS:
        cells = []
        for column in columns:
            value = measured[name].get(column)
            paper = PAPER_TABLE3[name].get(column)
            fmt = "{:.3f}" if column == "dblp_lp" else "{:.2f}"
            v_txt = fmt.format(value) if value is not None else "-"
            p_txt = fmt.format(paper) if paper is not None else "-"
            cells.append(f"{v_txt + ' (' + p_txt + ')':>{width}}")
        lines.append(f"{name:<16}" + "".join(cells))
    lines.append("\ncell format: measured (paper)")
    return "\n".join(lines)


@pytest.mark.benchmark(group="table3")
def test_table3_loss_ablation(benchmark):
    table = benchmark.pedantic(generate_table3, rounds=1, iterations=1)
    emit("Table 3: loss-term ablation", table)
    assert table
