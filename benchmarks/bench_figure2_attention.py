"""Figure 2 — per-class flyback attention over granularity levels.

Trains AdamGNN node classifiers on the ACM- and DBLP-style graphs and
prints the class × level attention heat map.  Expected shape: different
classes concentrate their attention on different levels, and the same
topic-like class shows *different* level profiles on the two datasets —
the qualitative observation of the paper's Figure 2.
"""

from typing import Tuple

import numpy as np
import pytest

from repro.core import attention_by_class, format_attention_heatmap
from repro.datasets import load_node_dataset
from repro.tensor import Tensor
from repro.training import (NodeClassificationTrainer, TrainConfig,
                            make_node_classifier, prepare_node_features)

from .common import emit, is_smoke

CLASS_NAMES = {
    "acm": ["database", "wireless comm.", "data mining"],
    "dblp": ["database", "data mining", "AI", "computer vision"],
}


def _attention_for(dataset_name: str) -> Tuple[str, np.ndarray]:
    dataset = load_node_dataset(dataset_name, seed=0)
    features = prepare_node_features(dataset)
    model = make_node_classifier("adamgnn", features.shape[1],
                                 dataset.num_classes, seed=0, num_levels=3)
    epochs = 2 if is_smoke() else 60
    config = TrainConfig(epochs=epochs, patience=25, seed=0)
    NodeClassificationTrainer(config).fit(model, dataset)
    model.eval()
    _, out = model(Tensor(features), dataset.graph.edge_index,
                   dataset.graph.edge_weight)
    table = attention_by_class(out, dataset.graph.y, dataset.num_classes)
    return format_attention_heatmap(table, CLASS_NAMES[dataset_name]), table


def generate_figure2() -> str:
    sections = []
    spread = []
    for name in ("acm", "dblp"):
        rendered, table = _attention_for(name)
        sections.append(f"--- {name.upper()} ---\n{rendered}")
        spread.append(float(table.max(axis=1).mean()
                            - table.min(axis=1).mean()))
    sections.append(
        "\nPaper's Figure 2 observation: attention distributions differ by\n"
        "class and by dataset (e.g. 'data mining' peaks at level-1 on ACM\n"
        f"but at a deeper level on DBLP).  Mean per-class attention spread\n"
        f"measured here: ACM {spread[0]:.3f}, DBLP {spread[1]:.3f} "
        "(0 would mean uniform, uninformative attention).")
    return "\n\n".join(sections)


@pytest.mark.benchmark(group="figure2")
def test_figure2_attention_heatmap(benchmark):
    figure = benchmark.pedantic(generate_figure2, rounds=1, iterations=1)
    emit("Figure 2: flyback attention by class and level", figure)
    assert "ACM" in figure
