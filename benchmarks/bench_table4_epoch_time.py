"""Table 4 — mean per-epoch training time of the graph-classification
pooling models on NCI1, NCI109 and PROTEINS.

Expected shape: the dense assignment methods (DiffPool, StructPool) pay the
O(n²) cost, TopKPool pays for its unpooling convolutions, SAGPool is the
cheapest, and AdamGNN sits in between — the sparse-design claim of the
paper's running-time analysis.

Absolute seconds are NumPy-on-CPU and not comparable to the paper's GPU
numbers; compare the *ordering* of the rows per column.

A second section times node-classification training (full-batch epochs on
the Table-2 graphs) and prints AdamGNN's per-phase breakdown from the
:class:`~repro.utils.timing.PhaseTimer` hooks — the regression guard for
the segment-kernel / structure-cache fast paths.
"""

from typing import Dict

import numpy as np
import pytest

from repro.datasets import load_graph_dataset, load_node_dataset
from repro.training import TrainConfig
from repro.training.experiment import (make_graph_classifier,
                                       make_node_classifier)
from repro.training.graph_trainer import GraphClassificationTrainer
from repro.training.node_trainer import (NodeClassificationTrainer,
                                         prepare_node_features)

from .common import PAPER_TABLE4, comparison_table, emit, is_smoke

MODELS = ("diffpool", "sagpool", "topkpool", "structpool", "adamgnn")
DATASETS = ("nci1", "nci109", "proteins")

NODE_MODELS = ("gcn", "gat", "adamgnn")
NODE_DATASETS = ("cora", "citeseer", "acm")


def generate_table4() -> str:
    datasets = ("nci1",) if is_smoke() else DATASETS
    repeats = 1 if is_smoke() else 3
    trainer = GraphClassificationTrainer(TrainConfig(epochs=1,
                                                     batch_size=32))
    measured: Dict[str, Dict[str, float]] = {m: {} for m in MODELS}
    for dataset in datasets:
        data = load_graph_dataset(dataset, seed=0)
        for model_name in MODELS:
            times = []
            for _ in range(repeats):
                model = make_graph_classifier(model_name,
                                              data.num_features, 2, seed=0)
                times.append(trainer.time_one_epoch(model, data))
            measured[model_name][dataset] = float(np.mean(times))
    return comparison_table(measured, PAPER_TABLE4, MODELS, datasets,
                            fmt="{:.2f}")


def generate_node_epoch_times() -> str:
    """Per-epoch training time (ms) for the node-classification models.

    Uses :meth:`NodeClassificationTrainer.time_one_epoch`: full training
    epochs, first epoch discarded (it pays the one-off structure-cache and
    segment-plan builds), remainder averaged.  AdamGNN additionally prints
    its phase breakdown.
    """
    datasets = ("cora",) if is_smoke() else NODE_DATASETS
    epochs = 3 if is_smoke() else 8
    lines = ["model      " + "".join(f"{d:>12s}" for d in datasets)]
    phase_report = ""
    for model_name in NODE_MODELS:
        row = [f"{model_name:<11s}"]
        for dataset_name in datasets:
            data = load_node_dataset(dataset_name, seed=0)
            features = prepare_node_features(data)
            model = make_node_classifier(model_name, features.shape[1],
                                         data.num_classes, seed=0)
            trainer = NodeClassificationTrainer(TrainConfig(epochs=epochs))
            mean_s, phases = trainer.time_one_epoch(model, data,
                                                    epochs=epochs)
            row.append(f"{mean_s * 1000.0:10.1f}ms")
            if model_name == "adamgnn" and dataset_name == datasets[0]:
                ordered = sorted(phases.items(), key=lambda kv: -kv[1])
                phase_report = "\n".join(
                    f"    {name:<16s}{seconds * 1000.0:8.2f} ms"
                    for name, seconds in ordered)
        lines.append("".join(row))
    table = "\n".join(lines)
    if phase_report:
        table += (f"\n\nadamgnn phase breakdown ({datasets[0]}, "
                  f"ms per epoch):\n{phase_report}")
    return table


@pytest.mark.benchmark(group="table4")
def test_table4_epoch_time(benchmark):
    table = benchmark.pedantic(generate_table4, rounds=1, iterations=1)
    emit("Table 4: per-epoch training time (seconds)", table)
    assert table


@pytest.mark.benchmark(group="table4")
def test_table4_node_epoch_time(benchmark):
    table = benchmark.pedantic(generate_node_epoch_times, rounds=1,
                               iterations=1)
    emit("Table 4 (supplement): node-classification epoch time", table)
    assert table
