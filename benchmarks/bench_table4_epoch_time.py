"""Table 4 — mean per-epoch training time of the graph-classification
pooling models on NCI1, NCI109 and PROTEINS.

Expected shape: the dense assignment methods (DiffPool, StructPool) pay the
O(n²) cost, TopKPool pays for its unpooling convolutions, SAGPool is the
cheapest, and AdamGNN sits in between — the sparse-design claim of the
paper's running-time analysis.

Absolute seconds are NumPy-on-CPU and not comparable to the paper's GPU
numbers; compare the *ordering* of the rows per column.
"""

from typing import Dict

import numpy as np
import pytest

from repro.datasets import load_graph_dataset
from repro.training import TrainConfig
from repro.training.experiment import make_graph_classifier
from repro.training.graph_trainer import GraphClassificationTrainer

from .common import PAPER_TABLE4, comparison_table, emit, is_smoke

MODELS = ("diffpool", "sagpool", "topkpool", "structpool", "adamgnn")
DATASETS = ("nci1", "nci109", "proteins")


def generate_table4() -> str:
    datasets = ("nci1",) if is_smoke() else DATASETS
    repeats = 1 if is_smoke() else 3
    trainer = GraphClassificationTrainer(TrainConfig(epochs=1,
                                                     batch_size=32))
    measured: Dict[str, Dict[str, float]] = {m: {} for m in MODELS}
    for dataset in datasets:
        data = load_graph_dataset(dataset, seed=0)
        for model_name in MODELS:
            times = []
            for _ in range(repeats):
                model = make_graph_classifier(model_name,
                                              data.num_features, 2, seed=0)
                times.append(trainer.time_one_epoch(model, data))
            measured[model_name][dataset] = float(np.mean(times))
    return comparison_table(measured, PAPER_TABLE4, MODELS, datasets,
                            fmt="{:.2f}")


@pytest.mark.benchmark(group="table4")
def test_table4_epoch_time(benchmark):
    table = benchmark.pedantic(generate_table4, rounds=1, iterations=1)
    emit("Table 4: per-epoch training time (seconds)", table)
    assert table
