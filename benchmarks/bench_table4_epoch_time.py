"""Table 4 — mean per-epoch training time of the graph-classification
pooling models on NCI1, NCI109 and PROTEINS.

Expected shape: the dense assignment methods (DiffPool, StructPool) pay the
O(n²) cost, TopKPool pays for its unpooling convolutions, SAGPool is the
cheapest, and AdamGNN sits in between — the sparse-design claim of the
paper's running-time analysis.

Absolute seconds are NumPy-on-CPU and not comparable to the paper's GPU
numbers; compare the *ordering* of the rows per column.

A second section times node-classification training (full-batch epochs on
the Table-2 graphs) and prints AdamGNN's per-phase breakdown from the
:class:`~repro.utils.timing.PhaseTimer` hooks — the regression guard for
the segment-kernel / structure-cache fast paths.

A third section is the regression guard for the *minibatch* pipeline
(per-graph structure precomputation, block-diagonal composition, the
collated-batch cache and the fused training kernels): steady-state AdamGNN
epochs on the synthetic PROTEINS workload, first epoch excluded, with the
medians written machine-readably to ``BENCH_graph_epoch.json`` at the repo
root next to the recorded pre-optimisation baseline.
"""

import json
import os
import statistics
from pathlib import Path
from typing import Dict

import numpy as np
import pytest

from repro.analysis import (assert_unpatched, sanitize, sanitizer_paused)
from repro.datasets import load_graph_dataset, load_node_dataset
from repro.tensor import Tensor, get_num_workers, serial_execution
from repro.training import TrainConfig
from repro.training.experiment import (make_graph_classifier,
                                       make_node_classifier)
from repro.training.graph_trainer import GraphClassificationTrainer
from repro.training.node_trainer import (NodeClassificationTrainer,
                                         prepare_node_features)

from .common import (PAPER_TABLE4, bench_environment, comparison_table,
                     current_commit, emit, is_smoke)

MODELS = ("diffpool", "sagpool", "topkpool", "structpool", "adamgnn")
DATASETS = ("nci1", "nci109", "proteins")

NODE_MODELS = ("gcn", "gat", "adamgnn")
NODE_DATASETS = ("cora", "citeseer", "acm")


def generate_table4() -> str:
    datasets = ("nci1",) if is_smoke() else DATASETS
    repeats = 1 if is_smoke() else 3
    trainer = GraphClassificationTrainer(TrainConfig(epochs=1,
                                                     batch_size=32))
    measured: Dict[str, Dict[str, float]] = {m: {} for m in MODELS}
    for dataset in datasets:
        data = load_graph_dataset(dataset, seed=0)
        for model_name in MODELS:
            times = []
            for _ in range(repeats):
                model = make_graph_classifier(model_name,
                                              data.num_features, 2, seed=0)
                times.append(trainer.time_one_epoch(model, data))
            measured[model_name][dataset] = float(np.mean(times))
    return comparison_table(measured, PAPER_TABLE4, MODELS, datasets,
                            fmt="{:.2f}")


def generate_node_epoch_times() -> str:
    """Per-epoch training time (ms) for the node-classification models.

    Uses :meth:`NodeClassificationTrainer.time_one_epoch`: full training
    epochs, first epoch discarded (it pays the one-off structure-cache and
    segment-plan builds), remainder averaged.  AdamGNN additionally prints
    its phase breakdown.
    """
    datasets = ("cora",) if is_smoke() else NODE_DATASETS
    epochs = 3 if is_smoke() else 8
    lines = ["model      " + "".join(f"{d:>12s}" for d in datasets)]
    phase_report = ""
    for model_name in NODE_MODELS:
        row = [f"{model_name:<11s}"]
        for dataset_name in datasets:
            data = load_node_dataset(dataset_name, seed=0)
            features = prepare_node_features(data)
            model = make_node_classifier(model_name, features.shape[1],
                                         data.num_classes, seed=0)
            trainer = NodeClassificationTrainer(TrainConfig(epochs=epochs))
            mean_s, phases = trainer.time_one_epoch(model, data,
                                                    epochs=epochs)
            row.append(f"{mean_s * 1000.0:10.1f}ms")
            if model_name == "adamgnn" and dataset_name == datasets[0]:
                ordered = sorted(phases.items(), key=lambda kv: -kv[1])
                phase_report = "\n".join(
                    f"    {name:<16s}{seconds * 1000.0:8.2f} ms"
                    for name, seconds in ordered)
        lines.append("".join(row))
    table = "\n".join(lines)
    if phase_report:
        table += (f"\n\nadamgnn phase breakdown ({datasets[0]}, "
                  f"ms per epoch):\n{phase_report}")
    return table


#: Recorded pre-optimisation baseline for the steady-epoch workload below
#: (commit f589428, the state before the minibatch structure-composition
#: and kernel-fusion work).  Measured on the same machine with the same
#: protocol, interleaved A/B against the optimised tree (three alternating
#: rounds, each the median of six steady epochs) because the box's
#: wall-clock throughput drifts by double-digit percentages between runs —
#: only interleaved rounds give a trustworthy ratio.
GRAPH_EPOCH_BASELINE = {
    "commit": "f589428",
    "median_epoch_ms": 371.5,
    "round_medians_ms": [389.7, 371.5, 363.2],
    "interleaved_current_ms": [285.8, 278.4, 280.6],
    "interleaved_speedup": 1.32,
    "protocol": ("interleaved A/B, 3 rounds, median of 6 steady epochs "
                 "per round (first epoch excluded); the paired "
                 "interleaved ratio is the trustworthy speedup figure — "
                 "a standalone re-run lands wherever the machine's "
                 "throughput happens to be that minute"),
}

GRAPH_EPOCH_JSON = Path(__file__).resolve().parent.parent \
    / "BENCH_graph_epoch.json"

# Shared with the other benches (serving/inference import these names
# from here): the canonical implementations live in ``common.py`` since
# the data-parallel extension, with the DP knobs recorded alongside the
# thread environment.
_environment = bench_environment
_current_commit = current_commit


def _merge_into_json(section: str, payload: dict) -> None:
    """Update one top-level section of ``BENCH_graph_epoch.json`` in place,
    preserving whatever the other benchmark sections recorded."""
    existing = {}
    if GRAPH_EPOCH_JSON.exists():
        existing = json.loads(GRAPH_EPOCH_JSON.read_text())
    existing[section] = payload
    GRAPH_EPOCH_JSON.write_text(json.dumps(existing, indent=2) + "\n")


def generate_graph_epoch_benchmark() -> str:
    """Steady-state AdamGNN minibatch epoch time (graph classification).

    Synthetic PROTEINS workload, batch size 32, repo-default model
    configuration (hidden 64, three levels).  The first epoch pays the
    one-off per-graph structure precomputation and cache builds and is
    excluded; the reported figure is the median of the remaining epochs.
    Alongside the wall-clock table this writes ``BENCH_graph_epoch.json``
    with the measured medians, the per-phase breakdown, the cache
    counters, and the recorded pre-optimisation baseline.
    """
    epochs = 3 if is_smoke() else 7
    data = load_graph_dataset("proteins", seed=0)
    trainer = GraphClassificationTrainer(TrainConfig(epochs=1,
                                                     batch_size=32, seed=0))
    model = make_graph_classifier("adamgnn", data.num_features, 2, seed=0)
    times, phases = [], {}
    for _ in range(epochs):
        seconds, phases = trainer.profile_one_epoch(model, data)
        times.append(seconds * 1000.0)
    steady = times[1:]
    median_ms = statistics.median(steady)
    cache_stats = trainer.cache_stats(model)
    baseline_ms = GRAPH_EPOCH_BASELINE["median_epoch_ms"]

    payload = {
        "workload": {
            "dataset": "proteins (synthetic PROTEINS-like, seed 0)",
            "num_graphs": len(data.graphs),
            "train_graphs": int(data.train_index.shape[0]),
            "batch_size": 32,
            "model": "adamgnn (hidden 64, 3 levels, radius 1)",
            "protocol": (f"{epochs} epochs, first excluded, median of "
                         f"the rest; smoke={is_smoke()}"),
        },
        "environment": _environment(trainer.config.dtype),
        "baseline": GRAPH_EPOCH_BASELINE,
        "current": {
            "median_epoch_ms": round(median_ms, 1),
            "first_epoch_ms": round(times[0], 1),
            "steady_epoch_ms": [round(t, 1) for t in steady],
        },
        "speedup_vs_baseline": round(baseline_ms / median_ms, 2),
        "phase_ms": {name: round(seconds * 1000.0, 2)
                     for name, seconds in sorted(phases.items(),
                                                 key=lambda kv: -kv[1])},
        "cache_stats": cache_stats,
    }
    # Preserve the precision A/B section if its benchmark recorded one,
    # and extend the per-commit trajectory: one appended entry per
    # measured commit, so the optimisation history reads straight out of
    # the JSON instead of out of ``git log`` archaeology.
    history = [{"commit": GRAPH_EPOCH_BASELINE["commit"],
                "median_epoch_ms": GRAPH_EPOCH_BASELINE["median_epoch_ms"],
                "dtype": "float64"}]
    if GRAPH_EPOCH_JSON.exists():
        prior = json.loads(GRAPH_EPOCH_JSON.read_text())
        for section in ("precision_ab", "sanitizer_ab", "capture_ab",
                        "dp_scaling"):
            if section in prior:
                payload[section] = prior[section]
        history = prior.get("history", history)
    entry = {"commit": _current_commit(),
             "median_epoch_ms": round(median_ms, 1),
             "dtype": trainer.config.dtype}
    if history and history[-1].get("commit") == entry["commit"]:
        history[-1] = entry          # re-run on the same commit: refresh
    else:
        history.append(entry)
    payload["history"] = history
    GRAPH_EPOCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"baseline ({GRAPH_EPOCH_BASELINE['commit']}): "
        f"{baseline_ms:8.1f} ms/epoch",
        f"current:              {median_ms:8.1f} ms/epoch  "
        f"({baseline_ms / median_ms:.2f}x)",
        f"first epoch (cold):   {times[0]:8.1f} ms",
        "",
        "phase breakdown (ms per steady epoch):",
    ]
    lines += [f"    {name:<16s}{seconds * 1000.0:8.2f} ms"
              for name, seconds in sorted(phases.items(),
                                          key=lambda kv: -kv[1])]
    lines.append("")
    lines.append("cache hit/miss counters:")
    lines += [f"    {name:<16s}hits {c['hits']:>6d}  misses "
              f"{c['misses']:>5d}  entries {c['entries']:>5d}"
              for name, c in cache_stats.items()]
    lines.append(f"\nmachine-readable copy: {GRAPH_EPOCH_JSON.name}")
    return "\n".join(lines)


def generate_precision_ab() -> str:
    """Interleaved float32-vs-float64 A/B on the steady PROTEINS epoch.

    Both arms run the same seeded workload; the float32 arm uses the
    default compute path (chunk-parallel where the machine has cores to
    spare), the float64 arm runs under ``serial_execution()`` — i.e. the
    pre-policy reference configuration.  Rounds alternate between the two
    arms so the machine's wall-clock drift hits both equally, and the
    paired per-round ratio is the headline figure.  Medians land in the
    ``precision_ab`` section of ``BENCH_graph_epoch.json``.
    """
    rounds = 1 if is_smoke() else 3
    epochs_per_round = 2 if is_smoke() else 3
    data = load_graph_dataset("proteins", seed=0)
    arms = {}
    for dtype in ("float32", "float64"):
        arms[dtype] = {
            "trainer": GraphClassificationTrainer(
                TrainConfig(epochs=1, batch_size=32, seed=0, dtype=dtype)),
            "model": make_graph_classifier("adamgnn", data.num_features, 2,
                                           seed=0),
            "round_medians": [],
        }

    def epoch_ms(arm, dtype):
        if dtype == "float64":
            with serial_execution():
                seconds, _ = arm["trainer"].profile_one_epoch(
                    arm["model"], data)
        else:
            seconds, _ = arm["trainer"].profile_one_epoch(arm["model"], data)
        return seconds * 1000.0

    # Warm both arms: the cold epoch pays the one-off structure
    # precomputation and cache builds and belongs to neither measurement.
    for dtype, arm in arms.items():
        epoch_ms(arm, dtype)

    for _ in range(rounds):
        for dtype, arm in arms.items():
            arm["round_medians"].append(statistics.median(
                epoch_ms(arm, dtype) for _ in range(epochs_per_round)))

    m32 = statistics.median(arms["float32"]["round_medians"])
    m64 = statistics.median(arms["float64"]["round_medians"])
    paired = [b / a for a, b in zip(arms["float32"]["round_medians"],
                                    arms["float64"]["round_medians"])]
    payload = {
        "environment": _environment("float32 vs float64"),
        "protocol": (f"interleaved A/B, {rounds} rounds, median of "
                     f"{epochs_per_round} steady epochs per round per arm "
                     f"(cold epoch excluded); float64 arm under "
                     f"serial_execution(); smoke={is_smoke()}"),
        "float32_round_medians_ms": [round(v, 1) for v in
                                     arms["float32"]["round_medians"]],
        "float64_round_medians_ms": [round(v, 1) for v in
                                     arms["float64"]["round_medians"]],
        "float32_median_ms": round(m32, 1),
        "float64_median_ms": round(m64, 1),
        "paired_round_speedups": [round(r, 2) for r in paired],
        "float32_speedup": round(m64 / m32, 2),
    }
    _merge_into_json("precision_ab", payload)

    lines = [
        f"float64 serial:        {m64:8.1f} ms/epoch  "
        f"rounds {payload['float64_round_medians_ms']}",
        f"float32 chunk-parallel:{m32:8.1f} ms/epoch  "
        f"rounds {payload['float32_round_medians_ms']}",
        f"float32 speedup:       {m64 / m32:8.2f}x  "
        f"(paired per round: {payload['paired_round_speedups']})",
        f"kernel workers: {get_num_workers()}, cpus: {os.cpu_count()}",
        f"\nmachine-readable copy: {GRAPH_EPOCH_JSON.name} (precision_ab)",
    ]
    return "\n".join(lines)


def generate_capture_ab() -> str:
    """Interleaved capture off/on A/B on the steady PROTEINS epoch.

    The on arm trains with ``TrainConfig(capture=True)``: after the mark
    and capture visits, every step replays its recorded autograd tape
    with gradient buffers drawn from the preallocated training arena.
    ``profile_one_epoch`` re-seeds its chunk permutation, so the same
    (batch, structure) keys recur every epoch and replay engages from the
    third visit on — the warmup below runs exactly those visits so the
    measured epochs are all replays.  Rounds alternate off/on so the
    machine's wall-clock drift hits both arms equally; the paired
    per-round ratio is the headline figure.  Alongside the timings this
    records the replayed step's per-phase breakdown, the capture/arena
    counters, and the zero-steady-state-allocation evidence (the arena's
    ``allocations`` counter must not move across the measured epochs).
    Medians land in the ``capture_ab`` section of
    ``BENCH_graph_epoch.json`` and the on-arm median is appended to the
    per-commit ``history`` trajectory.
    """
    try:
        import resource

        def minor_faults():
            return resource.getrusage(resource.RUSAGE_SELF).ru_minflt
    except ImportError:          # non-POSIX: skip the fault counters
        def minor_faults():
            return 0

    rounds = 1 if is_smoke() else 3
    epochs_per_round = 2 if is_smoke() else 3
    data = load_graph_dataset("proteins", seed=0)
    arms = {}
    for name, capture in (("off", False), ("on", True)):
        arms[name] = {
            "trainer": GraphClassificationTrainer(
                TrainConfig(epochs=1, batch_size=32, seed=0,
                            capture=capture)),
            "model": make_graph_classifier("adamgnn", data.num_features, 2,
                                           seed=0),
            "round_medians": [],
            "round_faults": [],
        }

    def epoch_ms(arm):
        seconds, phases = arm["trainer"].profile_one_epoch(arm["model"],
                                                           data)
        arm["phases"] = phases
        return seconds * 1000.0

    # Warm the off arm past the cold epoch, and the on arm past its mark
    # (1st visit) and capture (2nd visit) epochs so every measured epoch
    # replays a recorded tape.  Then keep warming the on arm until the
    # arena settles — one full epoch with zero new allocations — so the
    # measured epochs run against a fully preallocated arena.  (The
    # learned selection's size drift can cross a size-class boundary
    # after settling; that costs O(1) buffers ever, which the acceptance
    # bound tolerates.)
    epoch_ms(arms["off"])
    for _ in range(3):
        epoch_ms(arms["on"])

    def tape_stats():
        return arms["on"]["trainer"].cache_stats()["training_tape"]

    assert tape_stats()["hits"] > 0, "replay did not engage during warmup"
    warm_epochs, clean_epochs = 3, 0
    allocs_at_steady = tape_stats()["arena_allocations"]
    for _ in range(12):
        epoch_ms(arms["on"])
        warm_epochs += 1
        now = tape_stats()["arena_allocations"]
        clean_epochs = clean_epochs + 1 if now == allocs_at_steady else 0
        allocs_at_steady = now
        if clean_epochs >= 2:
            break

    for _ in range(rounds):
        for arm in arms.values():
            faults_before = minor_faults()
            arm["round_medians"].append(statistics.median(
                epoch_ms(arm) for _ in range(epochs_per_round)))
            arm["round_faults"].append(
                (minor_faults() - faults_before) / epochs_per_round)

    off_ms = statistics.median(arms["off"]["round_medians"])
    on_ms = statistics.median(arms["on"]["round_medians"])
    off_faults = statistics.median(arms["off"]["round_faults"])
    on_faults = statistics.median(arms["on"]["round_faults"])
    paired = [off / on for off, on in zip(arms["off"]["round_medians"],
                                          arms["on"]["round_medians"])]
    stats = arms["on"]["trainer"].cache_stats()["training_tape"]
    steady_allocs = stats["arena_allocations"] - allocs_at_steady

    payload = {
        "environment": _environment(
            arms["on"]["trainer"].config.dtype),
        "protocol": (f"interleaved A/B, {rounds} rounds, median of "
                     f"{epochs_per_round} steady epochs per round per arm "
                     f"(cold/mark/capture epochs excluded; on arm warmed "
                     f"{warm_epochs} epochs until the arena settled); "
                     f"smoke={is_smoke()}"),
        "off_round_medians_ms": [round(v, 1) for v in
                                 arms["off"]["round_medians"]],
        "on_round_medians_ms": [round(v, 1) for v in
                                arms["on"]["round_medians"]],
        "off_median_ms": round(off_ms, 1),
        "on_median_ms": round(on_ms, 1),
        "paired_round_speedups": [round(r, 2) for r in paired],
        "capture_speedup": round(off_ms / on_ms, 2),
        # Minor page faults per epoch (RUSAGE_SELF): the drift-immune
        # signal of what the arena removes — every fresh >=128 KiB NumPy
        # allocation is an mmap whose pages fault in on first touch.
        "off_minor_faults_per_epoch": round(off_faults),
        "on_minor_faults_per_epoch": round(on_faults),
        "replayed_phase_ms": {
            name: round(seconds * 1000.0, 2)
            for name, seconds in sorted(arms["on"]["phases"].items(),
                                        key=lambda kv: -kv[1])},
        "capture_stats": stats,
        # Arena allocations across all measured epochs: 0 means every
        # gradient/forward buffer came out of the preallocated arena.
        "steady_state_arena_allocations": steady_allocs,
    }
    _merge_into_json("capture_ab", payload)

    # Extend the per-commit trajectory with the captured-arm figure so
    # the history reads as "what a default (capture-on) epoch costs".
    contents = json.loads(GRAPH_EPOCH_JSON.read_text())
    history = contents.setdefault("history", [])
    entry = {"commit": _current_commit(), "median_epoch_ms": round(on_ms, 1),
             "dtype": arms["on"]["trainer"].config.dtype, "capture": True}
    if history and history[-1].get("commit") == entry["commit"] \
            and history[-1].get("capture"):
        history[-1] = entry
    else:
        history.append(entry)
    GRAPH_EPOCH_JSON.write_text(json.dumps(contents, indent=2) + "\n")

    lines = [
        f"capture off:           {off_ms:8.1f} ms/epoch  "
        f"rounds {payload['off_round_medians_ms']}",
        f"capture on (replay):   {on_ms:8.1f} ms/epoch  "
        f"rounds {payload['on_round_medians_ms']}",
        f"capture speedup:       {off_ms / on_ms:8.2f}x  "
        f"(paired per round: {payload['paired_round_speedups']})",
        f"minor faults/epoch:    off {off_faults:8.0f}   on "
        f"{on_faults:8.0f}",
        f"replay: {stats['hits']} hits, {stats['fallbacks']} fallbacks, "
        f"{stats['entries']} tapes, {stats['tape_nodes']} nodes, "
        f"grad arena {stats['grad_arena_bytes'] / 1e6:.1f} MB",
        f"steady-state arena allocations: {steady_allocs} "
        f"(0 = fully preallocated)",
        f"\nmachine-readable copy: {GRAPH_EPOCH_JSON.name} (capture_ab)",
    ]
    return "\n".join(lines)


def generate_sanitizer_ab() -> str:
    """Interleaved sanitizer on/off A/B on the steady PROTEINS epoch.

    Measures what ``REPRO_SANITIZE=1`` costs (NaN/Inf checks at every
    ``_make_child``, workspace slot poisoning at every generation advance,
    segment dtype contracts) and proves the off state costs nothing.  The
    off arm runs under ``sanitizer_paused()`` so the A/B is valid even when
    the whole process is sanitized, and it asserts the **zero-cost-off
    contract**: with sanitizers off, ``Tensor._make_child`` *is* the
    original function object — not a wrapper with a flag check — so the
    disabled path cannot differ from a tree without the sanitizer module.
    Rounds alternate off/on so wall-clock drift hits both arms equally;
    the paired per-round ratio is the headline overhead figure.  Medians
    land in the ``sanitizer_ab`` section of ``BENCH_graph_epoch.json``.
    """
    rounds = 1 if is_smoke() else 3
    epochs_per_round = 2 if is_smoke() else 3
    data = load_graph_dataset("proteins", seed=0)
    trainer = GraphClassificationTrainer(TrainConfig(epochs=1,
                                                     batch_size=32, seed=0))
    model = make_graph_classifier("adamgnn", data.num_features, 2, seed=0)

    def epoch_ms() -> float:
        seconds, _ = trainer.profile_one_epoch(model, data)
        return seconds * 1000.0

    # Zero-cost-off contract, checked before any timing: the off arm runs
    # the exact original code objects.
    with sanitizer_paused():
        assert_unpatched()
        unpatched_make_child = Tensor._make_child

    # Warm: the cold epoch pays the one-off structure precomputation and
    # cache builds and belongs to neither arm.
    with sanitizer_paused():
        epoch_ms()

    off_medians, on_medians = [], []
    for _ in range(rounds):
        with sanitizer_paused():
            assert Tensor._make_child is unpatched_make_child
            off_medians.append(statistics.median(
                epoch_ms() for _ in range(epochs_per_round)))
        with sanitize():
            assert Tensor._make_child is not unpatched_make_child
            on_medians.append(statistics.median(
                epoch_ms() for _ in range(epochs_per_round)))
    with sanitizer_paused():
        assert_unpatched()

    off_ms = statistics.median(off_medians)
    on_ms = statistics.median(on_medians)
    paired = [on / off for off, on in zip(off_medians, on_medians)]
    payload = {
        "environment": _environment(trainer.config.dtype),
        "protocol": (f"interleaved A/B, {rounds} rounds, median of "
                     f"{epochs_per_round} steady epochs per round per arm "
                     f"(cold epoch excluded); off arm under "
                     f"sanitizer_paused(); smoke={is_smoke()}"),
        "off_round_medians_ms": [round(v, 1) for v in off_medians],
        "on_round_medians_ms": [round(v, 1) for v in on_medians],
        "off_median_ms": round(off_ms, 1),
        "on_median_ms": round(on_ms, 1),
        "paired_round_overheads": [round(r, 2) for r in paired],
        "sanitizer_overhead": round(on_ms / off_ms, 2),
        # assert_unpatched() passed in the off arm: the disabled hot path
        # is the original function object, i.e. literally zero cost off.
        "zero_cost_off": True,
    }
    _merge_into_json("sanitizer_ab", payload)

    lines = [
        f"sanitizers off:        {off_ms:8.1f} ms/epoch  "
        f"rounds {payload['off_round_medians_ms']}",
        f"sanitizers on:         {on_ms:8.1f} ms/epoch  "
        f"rounds {payload['on_round_medians_ms']}",
        f"sanitizer overhead:    {on_ms / off_ms:8.2f}x  "
        f"(paired per round: {payload['paired_round_overheads']})",
        "zero-cost-off: _make_child identity verified in the off arm",
        f"\nmachine-readable copy: {GRAPH_EPOCH_JSON.name} (sanitizer_ab)",
    ]
    return "\n".join(lines)


def generate_dp_scaling() -> str:
    """Interleaved data-parallel scaling sweep on the steady PROTEINS epoch.

    Arms: the plain serial trainer, and the sharded trainer at a fixed
    four-shard assignment with ``num_procs`` ∈ {1, 2, 4}.  Shard count is
    held constant across the dp arms because the run is a pure function of
    the assignment — worker count is packing — so the sweep isolates
    exactly the cost/benefit of processes.  Each arm runs a full ``fit``
    (fresh model and trainer) and its steady figure is the median of
    ``result.epoch_seconds`` with the cold first epoch excluded; rounds
    alternate through all arms so wall-clock drift hits them equally, and
    the paired per-round ratios are the headline figures.  Alongside the
    timings this records each dp arm's sharding record (mode, start
    method, comm segment bytes, chunk layout).  Results land in the
    ``dp_scaling`` section of ``BENCH_graph_epoch.json``.

    On a multi-core box the dp4 arm is the scaling claim; on a single
    core the sweep is still recorded and the meaningful figure is the
    dp1 overhead — what the lane writes, the f64 reduction and the
    ragged shard chunking cost relative to the plain trainer.
    """
    rounds = 1 if is_smoke() else 3
    epochs_per_fit = 2 if is_smoke() else 4
    procs_sweep = (1, 2) if is_smoke() else (1, 2, 4)
    num_shards = 4
    data = load_graph_dataset("proteins", seed=0)

    def run_arm(num_procs: int, shards: int):
        trainer = GraphClassificationTrainer(
            TrainConfig(epochs=epochs_per_fit, patience=4 * epochs_per_fit,
                        batch_size=32, seed=0, num_procs=num_procs,
                        num_shards=shards))
        model = make_graph_classifier("adamgnn", data.num_features, 2,
                                      seed=0)
        result = trainer.fit(model, data)
        steady = [s * 1000.0 for s in result.epoch_seconds[1:]]
        return statistics.median(steady), result

    arm_names = ["plain"] + [f"dp{p}" for p in procs_sweep]
    arms = {name: {"round_medians": []} for name in arm_names}
    sharding_records: Dict[str, dict] = {}
    for _ in range(rounds):
        median_ms, _ = run_arm(1, 1)
        arms["plain"]["round_medians"].append(median_ms)
        for procs in procs_sweep:
            median_ms, result = run_arm(procs, num_shards)
            arms[f"dp{procs}"]["round_medians"].append(median_ms)
            record = dict(result.sharding)
            assignment = record.pop("assignment", None) or {}
            record["chunks_per_shard"] = assignment.get("chunks_per_shard")
            record["steps_per_epoch"] = assignment.get("steps_per_epoch")
            sharding_records[f"dp{procs}"] = record

    medians = {name: statistics.median(arm["round_medians"])
               for name, arm in arms.items()}
    plain_rounds = arms["plain"]["round_medians"]
    paired_speedups = {
        f"dp{p}": [round(plain / dp, 2) for plain, dp in
                   zip(plain_rounds, arms[f"dp{p}"]["round_medians"])]
        for p in procs_sweep}
    overhead_rounds = [dp / plain for plain, dp in
                       zip(plain_rounds, arms["dp1"]["round_medians"])]
    dp1_overhead = statistics.median(overhead_rounds)
    dtype = TrainConfig(epochs=1, num_procs=1, num_shards=1).dtype

    payload = {
        "environment": _environment(dtype, num_shards=num_shards,
                                    procs_sweep=list(procs_sweep)),
        "protocol": (f"interleaved sweep, {rounds} rounds; each arm one "
                     f"fresh fit of {epochs_per_fit} epochs, steady "
                     f"figure = median with the cold epoch excluded; dp "
                     f"arms share a fixed {num_shards}-shard assignment "
                     f"(worker count is pure packing); "
                     f"smoke={is_smoke()}"),
        "round_medians_ms": {name: [round(v, 1) for v in
                                    arm["round_medians"]]
                             for name, arm in arms.items()},
        "median_ms": {name: round(v, 1) for name, v in medians.items()},
        "paired_speedup_vs_plain": paired_speedups,
        "speedup_vs_plain": {f"dp{p}": round(
            medians["plain"] / medians[f"dp{p}"], 2) for p in procs_sweep},
        "dp1_overhead_vs_plain": round(dp1_overhead, 3),
        "sharding": sharding_records,
    }
    _merge_into_json("dp_scaling", payload)

    # Extend the per-commit trajectory with the widest dp arm so the
    # history records what a maximally parallel epoch costs here.
    top = max(procs_sweep)
    contents = json.loads(GRAPH_EPOCH_JSON.read_text())
    history = contents.setdefault("history", [])
    entry = {"commit": _current_commit(),
             "median_epoch_ms": round(medians[f"dp{top}"], 1),
             "dtype": dtype, "dp_procs": top}
    if history and history[-1].get("commit") == entry["commit"] \
            and history[-1].get("dp_procs"):
        history[-1] = entry
    else:
        history.append(entry)
    GRAPH_EPOCH_JSON.write_text(json.dumps(contents, indent=2) + "\n")

    lines = [f"plain serial:          {medians['plain']:8.1f} ms/epoch  "
             f"rounds {payload['round_medians_ms']['plain']}"]
    for procs in procs_sweep:
        name = f"dp{procs}"
        mode = sharding_records[name]["mode"]
        lines.append(
            f"{name} ({mode:>6s}/4sh):   {medians[name]:8.1f} ms/epoch  "
            f"{medians['plain'] / medians[name]:5.2f}x  "
            f"rounds {payload['round_medians_ms'][name]}")
    lines += [
        f"dp1 sharding overhead: {dp1_overhead:8.2f}x vs plain "
        f"(paired rounds {[round(r, 2) for r in overhead_rounds]})",
        f"comm segment: "
        f"{sharding_records[f'dp{top}'].get('comm_bytes', 0) / 1e6:.1f} MB, "
        f"start method {sharding_records[f'dp{top}'].get('start_method')}, "
        f"cpus: {os.cpu_count()}",
        f"\nmachine-readable copy: {GRAPH_EPOCH_JSON.name} (dp_scaling)",
    ]
    return "\n".join(lines)


@pytest.mark.benchmark(group="table4")
def test_graph_epoch_dp_scaling(benchmark):
    table = benchmark.pedantic(generate_dp_scaling, rounds=1, iterations=1)
    emit("Table 4 (supplement): data-parallel scaling sweep", table)
    assert table
    assert GRAPH_EPOCH_JSON.exists()
    section = json.loads(GRAPH_EPOCH_JSON.read_text())["dp_scaling"]
    assert section["sharding"]["dp2"]["comm_bytes"] > 0
    if not is_smoke():
        if (os.cpu_count() or 1) >= 4:
            # Multi-core: the scaling claim proper.
            assert section["speedup_vs_plain"]["dp4"] >= 1.5
        else:
            # Single core: processes cannot speed anything up; the gate
            # is that sharded serial execution stays within 10% of the
            # plain trainer (lane writes + f64 reduction are cheap).
            assert section["dp1_overhead_vs_plain"] <= 1.10


@pytest.mark.benchmark(group="table4")
def test_graph_epoch_sanitizer_ab(benchmark):
    table = benchmark.pedantic(generate_sanitizer_ab, rounds=1,
                               iterations=1)
    emit("Table 4 (supplement): sanitizer on/off steady epoch", table)
    assert table
    assert GRAPH_EPOCH_JSON.exists()
    section = json.loads(GRAPH_EPOCH_JSON.read_text())["sanitizer_ab"]
    assert section["zero_cost_off"] is True


@pytest.mark.benchmark(group="table4")
def test_graph_epoch_capture_ab(benchmark):
    table = benchmark.pedantic(generate_capture_ab, rounds=1,
                               iterations=1)
    emit("Table 4 (supplement): capture off/on steady epoch", table)
    assert table
    assert GRAPH_EPOCH_JSON.exists()
    section = json.loads(GRAPH_EPOCH_JSON.read_text())["capture_ab"]
    assert section["capture_stats"]["fallbacks"] == 0
    # 0 in the common case; a selection-drift size-class crossing after
    # the settle loop may add O(1) buffers across all measured epochs.
    assert section["steady_state_arena_allocations"] <= 8


@pytest.mark.benchmark(group="table4")
def test_graph_epoch_precision_ab(benchmark):
    table = benchmark.pedantic(generate_precision_ab, rounds=1,
                               iterations=1)
    emit("Table 4 (supplement): float32 vs float64 steady epoch", table)
    assert table
    assert GRAPH_EPOCH_JSON.exists()


@pytest.mark.benchmark(group="table4")
def test_graph_epoch_steady_state(benchmark):
    table = benchmark.pedantic(generate_graph_epoch_benchmark, rounds=1,
                               iterations=1)
    emit("Table 4 (supplement): graph-classification steady epoch", table)
    assert table
    assert GRAPH_EPOCH_JSON.exists()


@pytest.mark.benchmark(group="table4")
def test_table4_epoch_time(benchmark):
    table = benchmark.pedantic(generate_table4, rounds=1, iterations=1)
    emit("Table 4: per-epoch training time (seconds)", table)
    assert table


@pytest.mark.benchmark(group="table4")
def test_table4_node_epoch_time(benchmark):
    table = benchmark.pedantic(generate_node_epoch_times, rounds=1,
                               iterations=1)
    emit("Table 4 (supplement): node-classification epoch time", table)
    assert table
