"""Table 8 / Appendix A.5 — impact of the number of granularity levels.

Sweeps AdamGNN's level count over the paper's six dataset/task pairs.
Expected shape: the best level count differs per dataset/task; link
prediction tends to prefer deeper hierarchies.  (Our graphs are ~4-6x
smaller than the originals, so the sweep covers 1-4 levels instead of
2-5.)
"""

from typing import Dict

import pytest

from repro.training import (TrainConfig, run_graph_classification,
                            run_link_prediction, run_node_classification)

from .common import PAPER_TABLE8, emit, is_smoke

COLUMNS = ("dblp_lp", "wiki_lp", "acm_nc", "citeseer_nc", "emails_nc",
           "mutagenicity_gc")
LEVELS = (1, 2, 3)


def _config(batch: bool = False) -> TrainConfig:
    if is_smoke():
        return TrainConfig(epochs=2, patience=5, batch_size=32)
    if batch:
        return TrainConfig(epochs=80, patience=25, batch_size=32)
    return TrainConfig(epochs=80, patience=25)


def _cell(column: str, levels: int) -> float:
    dataset, task = column.rsplit("_", 1)
    if task == "lp":
        return run_link_prediction(dataset, "adamgnn", seeds=(0,),
                                   config=_config(),
                                   num_levels=levels).mean
    if task == "nc":
        return run_node_classification(dataset, "adamgnn", seeds=(0,),
                                       config=_config(),
                                       num_levels=levels).mean * 100.0
    return run_graph_classification(dataset, "adamgnn", seeds=(0,),
                                    config=_config(batch=True),
                                    num_levels=levels).mean * 100.0


def generate_table8() -> str:
    columns = ("citeseer_nc",) if is_smoke() else COLUMNS
    levels = (1, 2) if is_smoke() else LEVELS
    measured: Dict[int, Dict[str, float]] = {}
    for level in levels:
        measured[level] = {col: _cell(col, level) for col in columns}

    width = 20
    header = f"{'#levels':<9}" + "".join(f"{c:>{width}}" for c in columns)
    lines = [header, "-" * len(header)]
    for level in levels:
        cells = []
        for col in columns:
            value = measured[level][col]
            # Paper sweeps 2-5 levels on graphs 4-6x larger; align level k
            # here with level k+1 there for the side-by-side print.
            paper = PAPER_TABLE8.get(level + 1, {}).get(col)
            fmt = "{:.3f}" if col.endswith("_lp") else "{:.2f}"
            v_txt = fmt.format(value)
            p_txt = fmt.format(paper) if paper is not None else "-"
            cells.append(f"{v_txt + ' (' + p_txt + ')':>{width}}")
        lines.append(f"{level:<9}" + "".join(cells))
    lines.append("\ncell format: measured (paper, at one level deeper — "
                 "our graphs are ~5x smaller)")
    return "\n".join(lines)


@pytest.mark.benchmark(group="table8")
def test_table8_level_sweep(benchmark):
    table = benchmark.pedantic(generate_table8, rounds=1, iterations=1)
    emit("Table 8: granularity-level sweep", table)
    assert table
