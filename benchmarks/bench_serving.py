"""Serving throughput under open-loop load: the async front end at work.

The workload is the same serving scenario ``bench_inference_throughput``
measures synchronously — a trained AdamGNN classifier answering requests
over the PROTEINS evaluation split — but pushed through
:class:`repro.serving.GraphServer` as independent requests instead of one
caller's pre-collated batches.  Two arms:

* **Closed loop (interleaved A/B)** — the single-caller overhead story,
  same protocol as ``BENCH_inference.json``: arm A calls
  ``Predictor.predict_batch`` on the canonical eval collation directly,
  arm B pushes the same 32 graphs through the server (queue, buckets,
  flush timer, worker hand-off) and waits.  Their ratio is the price of
  the serving indirection for one caller.
* **Open loop (Poisson sweep)** — the capacity story.  A seeded Poisson
  arrival process offers single-graph (plus a few small-chunk) requests
  at multiples of the closed-loop direct throughput; latency is accounted
  from each request's *scheduled* arrival (no coordinated omission).  At
  saturation, micro-batching pays for itself: duplicate requests for a
  graph share one batch slot and recurring canonical chunks replay
  captured arena plans, so completed requests/s exceeds the single-caller
  graphs/s while overload beyond the admission bound sheds with a typed
  ``Overloaded`` and the p99 of *admitted* requests stays bounded.

Results land in ``BENCH_serving.json`` at the repo root.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import GraphDataset, load_graph_dataset
from repro.inference import Predictor
from repro.serving import GraphServer, Overloaded, ServingConfig
from repro.training import TrainConfig
from repro.training.experiment import make_graph_classifier

from .bench_table4_epoch_time import _current_commit, _environment
from .common import emit, is_smoke

SERVING_JSON = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
INFERENCE_JSON = Path(__file__).resolve().parent.parent \
    / "BENCH_inference.json"

DTYPE = "float32"

#: Deployment tuning for this universe.  Coarse bands put the whole
#: 32-graph eval split (which fits one ``max_batch``) in a single bucket
#: whose canonical chunk replays one captured arena plan; fine bands
#: would shred it into per-batch overhead.  ``pad_to_bucket`` near zero
#: promotes *every* flush to that canonical chunk — arbitrary request
#: subsets would each be a novel composition paying full structural
#: derivation (collation miss + fresh arena), while the canonical chunk
#: is a content-cache hit, so a few wasted logit rows buy an order of
#: magnitude.  ``max_pending`` sits between the arrivals one saturated
#: flush rotation sees at 1.5x and at 2x the closed-loop throughput:
#: the 1.5x point is admitted in full while the 2x overload point
#: demonstrably sheds, with the p99 of admitted requests bounded at a
#: couple of rotations.
SERVE_CONFIG = dict(max_batch=32, max_delay_ms=2.0, max_pending=128,
                    workers=1, node_band=64, edge_band=512,
                    pad_to_bucket=1e-6)

#: Fraction of open-loop arrivals that are small-chunk ``submit_many``
#: requests (2-3 graphs) rather than singles, and the resulting mean
#: graph-requests per arrival event (0.9*1 + 0.1*2.5).
CHUNK_PROB = 0.1
MEAN_IDS_PER_EVENT = 1.15


def _workload():
    """The serving universe: a dataset of exactly the PROTEINS eval split
    (val + test graphs re-indexed 0..n-1), plus the trained model."""
    data = load_graph_dataset("proteins", seed=0)
    eval_index = np.concatenate([data.val_index, data.test_index])
    graphs = [data.graphs[int(i)] for i in np.sort(eval_index)]
    universe = GraphDataset("proteins-eval", graphs, 2, data.num_features)
    model = make_graph_classifier("adamgnn", data.num_features, 2, seed=0)
    model.astype(DTYPE)
    return model, universe


def _percentiles(samples):
    return {
        "p50_ms": round(float(np.percentile(samples, 50)), 2),
        "p99_ms": round(float(np.percentile(samples, 99)), 2),
    }


def _closed_loop(model, universe, rounds, reps):
    """Interleaved A/B: direct Predictor vs served, same 32 graphs."""
    num_graphs = len(universe.graphs)
    all_ids = list(range(num_graphs))
    predictor = Predictor(model)
    structures = predictor._structures_for(universe)
    pair = structures.batch(np.arange(num_graphs, dtype=np.int64))

    with GraphServer(model, universe,
                     ServingConfig(**SERVE_CONFIG)) as server:
        def arm_direct():
            start = time.perf_counter()
            predictor.predict_batch(*pair)
            return (time.perf_counter() - start) * 1000.0

        def arm_served():
            start = time.perf_counter()
            for handle in server.submit_many(all_ids):
                handle.result(timeout=60.0)
            return (time.perf_counter() - start) * 1000.0

        arm_direct(), arm_served()              # warm both arms
        lat_a, lat_b = [], []
        for _ in range(rounds):
            lat_a += [arm_direct() for _ in range(reps)]
            lat_b += [arm_served() for _ in range(reps)]

    def summarise(samples):
        out = _percentiles(samples)
        out["graphs_per_sec"] = round(
            float(num_graphs / (np.percentile(samples, 50) / 1000.0)), 1)
        return out

    direct, served = summarise(lat_a), summarise(lat_b)
    return {
        "direct_predictor": direct,
        "served": served,
        "overhead_p50": round(served["p50_ms"] / direct["p50_ms"], 2),
    }


def _schedule(rng, qps, duration_s, num_graphs):
    """Seeded Poisson arrival plan: (scheduled_time, graph_ids) tuples.

    ``qps`` is in graph-requests/s; the event rate is scaled down by the
    mean chunk size so offered ids/s matches the target."""
    plan = []
    t = 0.0
    event_rate = qps / MEAN_IDS_PER_EVENT
    while True:
        t += float(rng.exponential(1.0 / event_rate))
        if t >= duration_s:
            return plan
        if rng.random() < CHUNK_PROB:
            size = int(rng.integers(2, 4))
            ids = [int(g) for g in rng.integers(0, num_graphs, size)]
        else:
            ids = [int(rng.integers(0, num_graphs))]
        plan.append((t, ids))


def _open_loop_point(model, universe, multiplier, qps, duration_s, seed):
    """One sweep point: fresh warmed server, Poisson arrivals at ``qps``."""
    server = GraphServer(model, universe, ServingConfig(**SERVE_CONFIG))
    try:
        # Warm: two canonical passes per bucket (capture, then replay),
        # so the measured window starts in the steady state.
        for _ in range(2):
            for members in server._members.values():
                for handle in server.submit_many(members):
                    handle.result(timeout=60.0)
        before = server.stats()

        plan = _schedule(np.random.default_rng(seed), qps, duration_s,
                         len(universe.graphs))
        admitted = []                      # (scheduled_time, handle)
        offered = shed = 0
        t0 = time.monotonic()
        for scheduled, ids in plan:
            delay = t0 + scheduled - time.monotonic()
            # Sub-millisecond gaps are submitted back-to-back: a sleep
            # syscall per event would eat the single CPU the workers
            # need, and quantising arrivals to ~1 ms does not change the
            # offered process at these rates.
            if delay > 1e-3:
                time.sleep(delay)
            offered += len(ids)
            try:
                if len(ids) == 1:
                    handles = [server.submit(ids[0])]
                else:
                    handles = server.submit_many(ids)
            except Overloaded:
                shed += len(ids)
                continue
            admitted.extend((scheduled, h) for h in handles)

        latencies, last_done = [], t0
        for scheduled, handle in admitted:
            handle.result(timeout=120.0)
            latencies.append(
                (handle.completed_at - (t0 + scheduled)) * 1000.0)
            last_done = max(last_done, handle.completed_at)
        after = server.stats()
    finally:
        server.close()

    completed = len(admitted)
    makespan = max(last_done - t0, 1e-9)
    point = {
        "multiplier": multiplier,
        "offered_qps": round(qps, 1),
        "offered": offered,
        "completed": completed,
        "shed": shed,
        "shed_rate": round(shed / offered, 4) if offered else 0.0,
        "achieved_rps": round(completed / makespan, 1),
        "mean_batch_size": round(
            _rate(after, before, "mean_batch_size"), 2),
        "batches": after["batches"] - before["batches"],
        "dedup_hits": after["dedup_hits"] - before["dedup_hits"],
        "padded_slots": after["padded_slots"] - before["padded_slots"],
        "collation_hits": (after["collation"]["hits"]
                           - before["collation"]["hits"]),
        "arena_allocations": int(after["arenas"]["allocations"]
                                 - before["arenas"]["allocations"]),
        "timed_out": after["timed_out"] - before["timed_out"],
    }
    if latencies:
        point.update(_percentiles(latencies))
    return point


def _rate(after, before, _key):
    """Mean batch size over just the measured window (hist deltas)."""
    served = sum(size * n for size, n in after["batch_size_hist"].items())
    served -= sum(size * n for size, n in before["batch_size_hist"].items())
    batches = after["batches"] - before["batches"]
    return served / batches if batches else 0.0


def generate_serving_benchmark() -> str:
    smoke = is_smoke()
    rounds, reps = (1, 3) if smoke else (3, 10)
    multipliers = [0.5, 2.0] if smoke else [0.25, 0.5, 1.0, 1.5, 2.0]
    duration_s = 0.6 if smoke else 2.5

    model, universe = _workload()
    closed = _closed_loop(model, universe, rounds, reps)
    baseline = closed["direct_predictor"]["graphs_per_sec"]

    reference = None
    if INFERENCE_JSON.exists():
        payload = json.loads(INFERENCE_JSON.read_text())
        reference = payload.get("predictor", {}).get("graphs_per_sec")

    points = [
        _open_loop_point(model, universe, m, m * baseline, duration_s,
                         seed=100 + i)
        for i, m in enumerate(multipliers)]

    saturation = max(points, key=lambda p: p["achieved_rps"])
    overload = points[-1]                      # highest multiplier
    acceptance = {
        "baseline_graphs_per_sec": baseline,
        "target_rps_1p5x": round(1.5 * baseline, 1),
        "saturation_achieved_rps": saturation["achieved_rps"],
        "meets_1p5x": bool(saturation["achieved_rps"] >= 1.5 * baseline),
        "overload_sheds": bool(overload["shed"] > 0),
        "overload_admitted_p99_ms": overload.get("p99_ms"),
    }

    payload = {
        "workload": {
            "dataset": "proteins (synthetic PROTEINS-like, seed 0)",
            "universe": "val + test split as the serving universe",
            "num_graphs": len(universe.graphs),
            "model": "adamgnn (hidden 64, 3 levels, radius 1)",
            "request_mix": f"singles + {CHUNK_PROB:.0%} chunks of 2-3",
        },
        "environment": _environment(DTYPE),
        "commit": _current_commit(),
        "config": dict(SERVE_CONFIG),
        "protocol": (
            f"closed loop: interleaved A/B, {rounds} rounds x {reps} "
            f"reps per arm, request = the 32-graph eval universe "
            f"(A = direct predict_batch, B = served via submit_many); "
            f"open loop: seeded Poisson arrivals for {duration_s}s per "
            f"point at multiplier x closed-loop-direct graphs/s, latency "
            f"from scheduled arrival (open loop, no coordinated "
            f"omission); smoke={smoke}"),
        "closed_loop": {**closed,
                        "bench_inference_reference_graphs_per_sec":
                            reference},
        "open_loop": points,
        "acceptance": acceptance,
    }
    SERVING_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"closed loop  direct: p50 {closed['direct_predictor']['p50_ms']:7.2f} ms "
        f"({baseline:8.1f} graphs/s)",
        f"closed loop  served: p50 {closed['served']['p50_ms']:7.2f} ms "
        f"({closed['served']['graphs_per_sec']:8.1f} graphs/s, "
        f"{closed['overhead_p50']:.2f}x overhead)",
        "",
        f"{'mult':>5} {'offered/s':>10} {'achieved/s':>11} {'p50 ms':>8} "
        f"{'p99 ms':>8} {'batch':>6} {'shed%':>6} {'dedup':>6}",
    ]
    for p in points:
        lines.append(
            f"{p['multiplier']:>5.2f} {p['offered_qps']:>10.1f} "
            f"{p['achieved_rps']:>11.1f} {p.get('p50_ms', float('nan')):>8.2f} "
            f"{p.get('p99_ms', float('nan')):>8.2f} "
            f"{p['mean_batch_size']:>6.1f} {100 * p['shed_rate']:>6.2f} "
            f"{p['dedup_hits']:>6d}")
    lines += [
        "",
        f"saturation {acceptance['saturation_achieved_rps']:.1f} req/s vs "
        f"1.5x target {acceptance['target_rps_1p5x']:.1f} req/s "
        f"-> meets_1p5x={acceptance['meets_1p5x']}",
        f"overload sheds: {acceptance['overload_sheds']} "
        f"(p99 of admitted {acceptance['overload_admitted_p99_ms']} ms)",
        f"\nmachine-readable copy: {SERVING_JSON.name}",
    ]
    return "\n".join(lines)


@pytest.mark.benchmark(group="serving")
def test_serving_throughput(benchmark):
    table = benchmark.pedantic(generate_serving_benchmark, rounds=1,
                               iterations=1)
    emit("Serving: open-loop throughput and admission control", table)
    assert table
    payload = json.loads(SERVING_JSON.read_text())
    for point in payload["open_loop"]:
        assert point["completed"] + point["shed"] == point["offered"]
        assert point["completed"] > 0
        assert point["timed_out"] == 0
    # Wall-clock acceptance is only asserted at full scope: the smoke
    # sweep is seconds long and runs on loaded CI boxes.
    if not is_smoke():
        acceptance = payload["acceptance"]
        assert acceptance["meets_1p5x"], acceptance
        assert acceptance["overload_sheds"], acceptance
        assert acceptance["overload_admitted_p99_ms"] < 250.0, acceptance
