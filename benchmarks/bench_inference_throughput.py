"""Serving-style inference throughput: Predictor vs training-mode forward.

The serving scenario: a trained AdamGNN graph classifier answers repeated
requests over a fixed evaluation split (the PROTEINS val+test graphs).  The
A arm runs each request exactly as a training step's forward does —
``model.train()``, gradients on, a fresh autograd tape and fresh structural
derivation every time.  The B arm serves the same requests through
:class:`repro.inference.Predictor`: no-grad, per-batch workspace arenas
(buffers and the captured coarsening plan replayed), identical logits.

Rounds alternate between the two arms so the machine's wall-clock drift
hits both equally — the paired interleaved ratio is the headline figure,
same protocol as the epoch benchmark.  Results land in
``BENCH_inference.json`` at the repo root: per-request p50/p95 latency,
graphs/sec, the speedup, and the parity/zero-allocation checks the
acceptance cares about (bitwise-equal logits in float32 *and* in float64
under ``naive_kernels()``, and a frozen allocation counter once every
batch has had its capture pass).
"""

import json
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import load_graph_dataset
from repro.inference import Predictor
from repro.tensor import default_dtype, naive_kernels
from repro.training import TrainConfig
from repro.training.experiment import make_graph_classifier
from repro.training.graph_trainer import (GraphClassificationTrainer,
                                          _model_forward)

from .bench_table4_epoch_time import _current_commit, _environment
from .common import emit, is_smoke

INFERENCE_JSON = Path(__file__).resolve().parent.parent \
    / "BENCH_inference.json"

BATCH_SIZE = 32


def _eval_pairs(dtype: str):
    """The serving workload: collated (batch, structure) pairs of the
    PROTEINS evaluation split (val + test), plus the model that serves
    them.  Collation goes through the trainer's own structure pipeline so
    both arms consume the exact batches ``evaluate()`` would."""
    data = load_graph_dataset("proteins", seed=0)
    eval_index = np.concatenate([data.val_index, data.test_index])
    model = make_graph_classifier("adamgnn", data.num_features, 2, seed=0)
    trainer = GraphClassificationTrainer(
        TrainConfig(dtype=dtype, batch_size=BATCH_SIZE, seed=0))
    model.astype(dtype)
    structures = trainer._structures_for(model, data)
    pairs = list(trainer._batches(structures, data, eval_index))
    return model, pairs, int(eval_index.shape[0])


def _reference_logits(model, pairs, dtype):
    """Eval-mode grad-on forward — the trainer's pre-engine arithmetic."""
    model.eval()
    with default_dtype(dtype):
        out = [_model_forward(model, b, s)[0].data.copy() for b, s in pairs]
    return out


def _check_parity(dtype: str, naive: bool) -> bool:
    model, pairs, _ = _eval_pairs(dtype)
    if naive:
        with naive_kernels():
            reference = _reference_logits(model, pairs, dtype)
            predictor = Predictor(model)
            served = [predictor.predict_batch(b, s) for b, s in pairs]
            # Replay pass: captured plans and recycled buffers must not
            # move a single bit either.
            replayed = [predictor.predict_batch(b, s) for b, s in pairs]
    else:
        reference = _reference_logits(model, pairs, dtype)
        predictor = Predictor(model)
        served = [predictor.predict_batch(b, s) for b, s in pairs]
        replayed = [predictor.predict_batch(b, s) for b, s in pairs]
    return (all((a == b).all() for a, b in zip(reference, served))
            and all((a == b).all() for a, b in zip(reference, replayed)))


def generate_inference_benchmark() -> str:
    rounds = 2 if is_smoke() else 5
    requests_per_round = 4 if is_smoke() else 20
    dtype = "float32"

    model, pairs, num_graphs = _eval_pairs(dtype)
    predictor = Predictor(model)

    # --- correctness gates -------------------------------------------
    parity = {
        "float32_bitwise": _check_parity("float32", naive=False),
        "float64_naive_bitwise": _check_parity("float64", naive=True),
    }

    # Capture pass for every served batch, then freeze the counter: the
    # steady state must not allocate a single new arena buffer.
    for batch, structure in pairs:
        predictor.predict_batch(batch, structure)
    allocations_after_capture = predictor.allocations
    for _ in range(3):
        for batch, structure in pairs:
            predictor.predict_batch(batch, structure)
    steady_allocations = predictor.allocations - allocations_after_capture

    # --- interleaved A/B ---------------------------------------------
    def request_a():
        model.train()
        start = time.perf_counter()
        with default_dtype(dtype):
            for batch, structure in pairs:
                _model_forward(model, batch, structure)
        return (time.perf_counter() - start) * 1000.0

    def request_b():
        start = time.perf_counter()
        for batch, structure in pairs:
            predictor.predict_batch(batch, structure)
        return (time.perf_counter() - start) * 1000.0

    request_a(), request_b()                      # warm both arms
    lat_a, lat_b = [], []
    for _ in range(rounds):
        lat_a += [request_a() for _ in range(requests_per_round)]
        lat_b += [request_b() for _ in range(requests_per_round)]

    def summarise(samples):
        return {
            "p50_ms": round(float(np.percentile(samples, 50)), 2),
            "p95_ms": round(float(np.percentile(samples, 95)), 2),
            "mean_ms": round(statistics.fmean(samples), 2),
            "graphs_per_sec": round(
                num_graphs / (np.percentile(samples, 50) / 1000.0), 1),
        }

    a_summary = summarise(lat_a)
    b_summary = summarise(lat_b)
    speedup = round(a_summary["p50_ms"] / b_summary["p50_ms"], 2)

    payload = {
        "workload": {
            "dataset": "proteins (synthetic PROTEINS-like, seed 0)",
            "split": "val + test",
            "num_graphs": num_graphs,
            "batch_size": BATCH_SIZE,
            "num_batches": len(pairs),
            "model": "adamgnn (hidden 64, 3 levels, radius 1)",
        },
        "environment": _environment(dtype),
        "commit": _current_commit(),
        "protocol": (f"interleaved A/B, {rounds} rounds x "
                     f"{requests_per_round} requests per arm per round, "
                     f"request = one pass over the eval split; A = "
                     f"training-mode forward (grad on, fresh tape and "
                     f"structure), B = Predictor steady state; "
                     f"smoke={is_smoke()}"),
        "training_mode_forward": a_summary,
        "predictor": b_summary,
        "speedup": speedup,
        "parity": parity,
        "workspace": {
            "steady_state_new_allocations": int(steady_allocations),
            **predictor.stats(),
        },
    }
    INFERENCE_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"training-mode forward: p50 {a_summary['p50_ms']:7.2f} ms   "
        f"p95 {a_summary['p95_ms']:7.2f} ms   "
        f"{a_summary['graphs_per_sec']:8.1f} graphs/s",
        f"predictor (no-grad):   p50 {b_summary['p50_ms']:7.2f} ms   "
        f"p95 {b_summary['p95_ms']:7.2f} ms   "
        f"{b_summary['graphs_per_sec']:8.1f} graphs/s",
        f"speedup (p50):         {speedup:.2f}x",
        "",
        f"bitwise parity  float32: {parity['float32_bitwise']}   "
        f"float64+naive kernels: {parity['float64_naive_bitwise']}",
        f"steady-state new allocations: {steady_allocations}  "
        f"(arena: {predictor.stats()['slots']} slots, "
        f"{predictor.stats()['nbytes'] / 1e6:.1f} MB, "
        f"{predictor.stats()['captured_structures']} captured structures)",
        f"\nmachine-readable copy: {INFERENCE_JSON.name}",
    ]
    return "\n".join(lines)


@pytest.mark.benchmark(group="inference")
def test_inference_throughput(benchmark):
    table = benchmark.pedantic(generate_inference_benchmark, rounds=1,
                               iterations=1)
    emit("Inference: serving throughput vs training-mode forward", table)
    assert table
    payload = json.loads(INFERENCE_JSON.read_text())
    assert payload["parity"]["float32_bitwise"] is True
    assert payload["parity"]["float64_naive_bitwise"] is True
    assert payload["workspace"]["steady_state_new_allocations"] == 0
    # The ratio itself is recorded, not asserted tightly: wall-clock on a
    # loaded CI box drifts, and the JSON is the reviewable artifact.
    assert payload["speedup"] > 1.0
