"""Table 2 — node classification (accuracy %) and link prediction
(ROC-AUC) on six datasets × six models.

Expected shape: AdamGNN has the highest average on both tasks; flat GNNs
trail on the community-structured graphs, with the weakest-feature dataset
(wiki) showing the clearest multi-grained advantage.
"""

import pytest

from repro.training import (NODE_MODEL_NAMES, TrainConfig,
                            run_link_prediction, run_node_classification)

from .common import (PAPER_TABLE2_LP, PAPER_TABLE2_NC, comparison_table,
                     emit, is_smoke)

DATASETS = ("acm", "citeseer", "cora", "emails", "dblp", "wiki")


def _config() -> TrainConfig:
    if is_smoke():
        return TrainConfig(epochs=2, patience=5)
    return TrainConfig(epochs=80, patience=25)


def _datasets():
    return ("cora",) if is_smoke() else DATASETS


def generate_table2_nc() -> str:
    results: dict = {model: {} for model in NODE_MODEL_NAMES}
    for dataset in _datasets():
        for model in NODE_MODEL_NAMES:
            cell = run_node_classification(dataset, model, seeds=(0,),
                                           config=_config())
            results[model][dataset] = cell.mean * 100.0
    return comparison_table(results, PAPER_TABLE2_NC,
                            NODE_MODEL_NAMES, _datasets())


def generate_table2_lp() -> str:
    results: dict = {model: {} for model in NODE_MODEL_NAMES}
    for dataset in _datasets():
        for model in NODE_MODEL_NAMES:
            cell = run_link_prediction(dataset, model, seeds=(0,),
                                       config=_config())
            results[model][dataset] = cell.mean
    return comparison_table(results, PAPER_TABLE2_LP,
                            NODE_MODEL_NAMES, _datasets(), fmt="{:.3f}")


@pytest.mark.benchmark(group="table2")
def test_table2_node_classification(benchmark):
    table = benchmark.pedantic(generate_table2_nc, rounds=1, iterations=1)
    emit("Table 2 (NC): node classification accuracy (%)", table)
    assert table


@pytest.mark.benchmark(group="table2")
def test_table2_link_prediction(benchmark):
    table = benchmark.pedantic(generate_table2_lp, rounds=1, iterations=1)
    emit("Table 2 (LP): link prediction ROC-AUC", table)
    assert table
