"""Benchmark-suite fixtures.

pytest's default file-descriptor capture swallows even direct writes to
``sys.__stdout__``; the autouse fixture below hands the capture manager to
:func:`benchmarks.common.emit` so each rendered table can be printed with
capture temporarily disabled (and therefore lands in redirected logs such
as ``bench_output.txt``).
"""

import pathlib

import pytest

from . import common

_BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    # Every benchmark regenerates a paper table (minutes each at full
    # scope); mark them all slow so the tier-1 `pytest -x -q` run skips
    # them by default (see addopts in pyproject.toml).  The hook fires for
    # the whole session's items when pytest runs from the repo root, so
    # restrict it to files under benchmarks/.
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(autouse=True)
def _expose_capture_control(capfd):
    common.CAPTURE_CONTROL = capfd
    yield
    common.CAPTURE_CONTROL = None
