"""Benchmark-suite fixtures.

pytest's default file-descriptor capture swallows even direct writes to
``sys.__stdout__``; the autouse fixture below hands the capture manager to
:func:`benchmarks.common.emit` so each rendered table can be printed with
capture temporarily disabled (and therefore lands in redirected logs such
as ``bench_output.txt``).
"""

import pytest

from . import common


@pytest.fixture(autouse=True)
def _expose_capture_control(capfd):
    common.CAPTURE_CONTROL = capfd
    yield
    common.CAPTURE_CONTROL = None
