"""Table 5 — flyback-aggregation ablation on NCI1, NCI109, Mutagenicity.

With flyback disabled the node representations never absorb the
multi-grained messages (H = H_0); the readout keeps the per-level messages
(Algorithm 1, line 25).  Expected shape: the full model beats the ablated
one on every dataset.
"""

from typing import Dict

import pytest

from repro.training import TrainConfig, run_graph_classification

from .common import PAPER_TABLE5, comparison_table, emit, is_smoke

DATASETS = ("nci1", "nci109", "mutagenicity")


def _config() -> TrainConfig:
    if is_smoke():
        return TrainConfig(epochs=2, patience=5, batch_size=32)
    return TrainConfig(epochs=80, patience=25, batch_size=32)


def generate_table5() -> str:
    datasets = ("nci1",) if is_smoke() else DATASETS
    measured: Dict[str, Dict[str, float]] = {"no flyback": {},
                                             "full model": {}}
    for dataset in datasets:
        for row, use_flyback in (("no flyback", False),
                                 ("full model", True)):
            cell = run_graph_classification(dataset, "adamgnn", seeds=(0,),
                                            config=_config(),
                                            use_flyback=use_flyback)
            measured[row][dataset] = cell.mean * 100.0
    return comparison_table(measured, PAPER_TABLE5,
                            ("no flyback", "full model"), datasets)


@pytest.mark.benchmark(group="table5")
def test_table5_flyback_ablation(benchmark):
    table = benchmark.pedantic(generate_table5, rounds=1, iterations=1)
    emit("Table 5: flyback-aggregation ablation (accuracy %)", table)
    assert table
