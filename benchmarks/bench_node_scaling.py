"""Node-count scaling: streamed SBM generation + sampled minibatch training.

The dense SBM sampler and the full-batch node trainer both hold whole-graph
state, which caps the substrate at a few tens of thousands of nodes.  This
bench sweeps the scaled configuration family
(:func:`~repro.datasets.sbm.scaled_sbm_config`, constant expected degree)
across two decades of graph size and records, per size:

* **generation** — wall-clock and peak RSS of the streamed block-pair
  sampler (``method="streaming"`` at every size so the numbers compare);
* **training** — sampled-minibatch GCN epochs over a CSC structure with a
  fixed optimiser-step budget (``max_steps_per_epoch``), reporting seconds
  per step and the run's peak RSS.

Two contrast arms anchor the sweep:

* **dense baseline** — the pre-streaming edge sampler with its O(n²)
  probability / uniform / mask intermediates, replicated here verbatim at
  the smallest sweep size, so the JSON carries the footprint the rewrite
  removed;
* **parity** — sampled vs full-batch training on the same graph at a size
  the full-batch path still handles, confirming the sampled path trades
  no measurable accuracy.

Every run is forked (:func:`benchmarks.common.run_isolated`), so each
arm's ``ru_maxrss`` is its own high-water mark, not the bench process's
history.  Results land in ``BENCH_node_scaling.json`` at the repo root
with a per-commit history entry, same protocol as ``BENCH_graph_epoch``.

Scope: ``REPRO_BENCH_SCOPE=smoke`` shrinks the sweep to {2e3, 1e4} nodes
with a two-epoch budget (seconds, used by CI); the full sweep covers
{1e4, 1e5, 1e6} and takes a few minutes, dominated by the 10^6-node arm.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import NodeDataset, NodeTaskSplits, split_nodes
from repro.datasets.sbm import generate_sbm_graph, scaled_sbm_config
from repro.training import TrainConfig
from repro.training.experiment import make_node_classifier
from repro.training.node_trainer import (NodeClassificationTrainer,
                                         prepare_node_features)

from .common import (bench_environment, current_commit, emit, is_smoke,
                     run_isolated)

NODE_SCALING_JSON = Path(__file__).resolve().parent.parent \
    / "BENCH_node_scaling.json"

SIZES_FULL = (10_000, 100_000, 1_000_000)
SIZES_SMOKE = (2_000, 10_000)

#: Validation/test indices are truncated to this many nodes in the timing
#: arms — evaluation cost is not what the sweep measures, and an untruncated
#: 10% split of a 10^6-node graph would spend more time evaluating than
#: training under the fixed step budget.
EVAL_CAP = 2048

_MB = 1024.0 * 1024.0


def _features_for(num_nodes: int) -> int:
    """Topic features up to 10^5 nodes; degree features (0) above.

    Keeps the 10^6-node arm's footprint dominated by the structures under
    test (edge list + CSC) rather than by a 10^6 × 64 float feature matrix.
    """
    return 64 if num_nodes <= 100_000 else 0


def _scaled_dataset(num_nodes: int, eval_cap: int = EVAL_CAP) -> NodeDataset:
    cfg = scaled_sbm_config(num_nodes,
                            num_features=_features_for(num_nodes))
    graph = generate_sbm_graph(cfg, seed=0)
    splits = split_nodes(graph.num_nodes, np.random.default_rng(4243))
    if eval_cap:
        splits = NodeTaskSplits(train=splits.train,
                                val=splits.val[:eval_cap],
                                test=splits.test[:eval_cap])
    return NodeDataset(name=f"sbm-{num_nodes}", graph=graph,
                       num_classes=cfg.num_classes, splits=splits)


# --------------------------------------------------------------------------
# Forked arms (module-level: results cross the pipe, so keep them dicts)
# --------------------------------------------------------------------------

def _generation_arm(num_nodes: int) -> dict:
    cfg = scaled_sbm_config(num_nodes,
                            num_features=_features_for(num_nodes))
    start = time.perf_counter()
    graph = generate_sbm_graph(cfg, seed=0, method="streaming")
    seconds = time.perf_counter() - start
    degrees = np.bincount(graph.edge_index[0], minlength=graph.num_nodes)
    return {
        "seconds": round(seconds, 3),
        "nodes": int(graph.num_nodes),
        "edges": int(graph.num_edges),
        "mean_degree": round(float(degrees.mean()), 2),
    }


def _dense_baseline_arm(num_nodes: int) -> dict:
    """The pre-streaming edge sampler, O(n²) intermediates and all.

    This is the removed implementation, kept here as the memory baseline
    the streamed sampler is judged against: a full (n, n) probability
    matrix, a full (n, n) uniform draw, and the boolean hit mask.
    """
    from repro.datasets.sbm import (_block_memberships, _block_prob_table,
                                    _degree_corrections)
    cfg = scaled_sbm_config(num_nodes,
                            num_features=_features_for(num_nodes))
    rng = np.random.default_rng(0)
    labels, communities, subs = _block_memberships(cfg, rng)
    theta = _degree_corrections(cfg, rng)
    table = _block_prob_table(cfg)
    start = time.perf_counter()
    n = cfg.num_nodes
    prob = table[subs[:, None], subs[None, :]]          # (n, n) float64
    prob *= theta[:, None] * theta[None, :]
    np.clip(prob, 0.0, 1.0, out=prob)
    hit = rng.random((n, n)) < prob                     # second (n, n)
    hit &= np.arange(n)[None, :] > np.arange(n)[:, None]
    src, dst = np.nonzero(hit)
    seconds = time.perf_counter() - start
    return {"seconds": round(seconds, 3), "nodes": n,
            "undirected_edges": int(src.shape[0])}


def _training_arm(num_nodes: int, epochs: int, max_steps: int,
                  batch_size: int, sampler: str = "uniform") -> dict:
    dataset = _scaled_dataset(num_nodes)
    features = prepare_node_features(dataset)
    model = make_node_classifier("gcn", features.shape[1],
                                 dataset.num_classes, seed=0)
    config = TrainConfig(sampled=True, epochs=epochs, patience=epochs,
                         seed=0, node_batch_size=batch_size, fanout=10,
                         num_hops=2, sampler=sampler,
                         max_steps_per_epoch=max_steps, profile=True)
    result = NodeClassificationTrainer(config).fit(model, dataset)
    steps_total = result.epochs_run * result.steps_per_epoch
    sampler_stats = (result.cache_stats or {}).get("sampler", {})
    return {
        "seconds": round(result.seconds, 3),
        "epochs_run": result.epochs_run,
        "steps_per_epoch": result.steps_per_epoch,
        "seconds_per_step": round(result.seconds / max(1, steps_total), 4),
        "test_accuracy": round(result.test_accuracy, 4),
        "mean_batch_nodes": round(sampler_stats.get("mean_batch_nodes",
                                                    0.0), 1),
        "last_batch_edges": sampler_stats.get("last_batch_edges", 0),
        "phase_seconds": {k: round(v, 4) for k, v in
                          sorted((result.phase_seconds or {}).items(),
                                 key=lambda kv: -kv[1])},
    }


def _parity_arm(num_nodes: int, epochs: int) -> dict:
    """Sampled vs full-batch accuracy on the identical graph + splits."""
    dataset = _scaled_dataset(num_nodes, eval_cap=0)
    features = prepare_node_features(dataset)
    accs = {}
    for mode in ("full_batch", "sampled"):
        model = make_node_classifier("gcn", features.shape[1],
                                     dataset.num_classes, seed=0)
        config = TrainConfig(epochs=epochs, patience=epochs, seed=0,
                             sampled=(mode == "sampled"),
                             node_batch_size=512, fanout=10, num_hops=2)
        result = NodeClassificationTrainer(config).fit(model, dataset)
        accs[mode] = round(result.test_accuracy, 4)
    return accs


# --------------------------------------------------------------------------
# The sweep
# --------------------------------------------------------------------------

def generate_node_scaling() -> str:
    smoke = is_smoke()
    sizes = SIZES_SMOKE if smoke else SIZES_FULL
    epochs = 2 if smoke else 3
    max_steps = 4 if smoke else 8
    batch_size = 256 if smoke else 1024
    parity_nodes = sizes[0]
    parity_epochs = 10 if smoke else 30

    records = []
    for num_nodes in sizes:
        gen, gen_peak = run_isolated(_generation_arm, num_nodes)
        train, train_peak = run_isolated(_training_arm, num_nodes, epochs,
                                         max_steps, batch_size)
        gen["peak_rss_mb"] = round(gen_peak / _MB, 1)
        train["peak_rss_mb"] = round(train_peak / _MB, 1)
        records.append({"num_nodes": num_nodes, "generation": gen,
                        "training": train})

    dense, dense_peak = run_isolated(_dense_baseline_arm, sizes[0])
    dense["peak_rss_mb"] = round(dense_peak / _MB, 1)
    parity, _ = run_isolated(_parity_arm, parity_nodes, parity_epochs)

    payload = {
        "protocol": {
            "scope": "smoke" if smoke else "full",
            "model": "gcn (hidden 64, 2 layers)",
            "sampler": "uniform, fanout 10, 2 hops",
            "epochs": epochs,
            "max_steps_per_epoch": max_steps,
            "node_batch_size": batch_size,
            "eval_cap": EVAL_CAP,
            "note": ("every arm forked so peak_rss_mb is the arm's own "
                     "high-water mark; generation timed with "
                     "method='streaming' at every size"),
        },
        "environment": bench_environment("float32"),
        "sizes": records,
        "dense_baseline": {"num_nodes": sizes[0], **dense},
        "parity": {"num_nodes": parity_nodes, "epochs": parity_epochs,
                   **parity},
    }

    history = []
    if NODE_SCALING_JSON.exists():
        history = json.loads(
            NODE_SCALING_JSON.read_text()).get("history", [])
    entry = {"commit": current_commit(),
             "scope": payload["protocol"]["scope"],
             "per_step_seconds": {
                 str(r["num_nodes"]): r["training"]["seconds_per_step"]
                 for r in records},
             "peak_rss_mb": {
                 str(r["num_nodes"]): r["training"]["peak_rss_mb"]
                 for r in records}}
    if history and history[-1].get("commit") == entry["commit"] \
            and history[-1].get("scope") == entry["scope"]:
        history[-1] = entry          # re-run on the same commit: refresh
    else:
        history.append(entry)
    payload["history"] = history
    NODE_SCALING_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    header = (f"{'nodes':>10} {'edges':>10} {'gen s':>8} {'gen MB':>8} "
              f"{'epoch s':>8} {'s/step':>8} {'train MB':>9} {'test acc':>9}")
    lines = [header, "-" * len(header)]
    for rec in records:
        g, t = rec["generation"], rec["training"]
        epoch_s = t["seconds"] / max(1, t["epochs_run"])
        lines.append(f"{rec['num_nodes']:>10,} {g['edges']:>10,} "
                     f"{g['seconds']:>8.2f} {g['peak_rss_mb']:>8.1f} "
                     f"{epoch_s:>8.2f} {t['seconds_per_step']:>8.3f} "
                     f"{t['peak_rss_mb']:>9.1f} {t['test_accuracy']:>9.4f}")
    lines.append("")
    lines.append(f"dense baseline @ {sizes[0]:,} nodes: "
                 f"{dense['seconds']:.2f} s, {dense['peak_rss_mb']:.1f} MB "
                 f"(streamed: {records[0]['generation']['seconds']:.2f} s, "
                 f"{records[0]['generation']['peak_rss_mb']:.1f} MB)")
    lines.append(f"parity @ {parity_nodes:,} nodes ({parity_epochs} ep): "
                 f"full-batch {parity['full_batch']:.4f}, "
                 f"sampled {parity['sampled']:.4f}")
    lines.append(f"\nmachine-readable copy: {NODE_SCALING_JSON.name}")
    return "\n".join(lines)


@pytest.mark.benchmark(group="node_scaling")
def test_node_scaling(benchmark):
    table = benchmark.pedantic(generate_node_scaling, rounds=1,
                               iterations=1)
    emit("Node scaling: streamed SBM + sampled minibatch training", table)
    assert table
    assert NODE_SCALING_JSON.exists()
    data = json.loads(NODE_SCALING_JSON.read_text())
    records = data["sizes"]

    # Epoch cost tracks the minibatch count, not the node count: per-step
    # seconds stay within a constant factor across the sweep even as the
    # graph grows 100x (the subgraph is capped by the fanout budget).
    per_step = [r["training"]["seconds_per_step"] for r in records]
    assert max(per_step) <= 25 * max(min(per_step), 1e-4)

    # Accuracy sanity: the sampled path actually learns the SBM's class
    # structure, at every scope (this is CI's sampled-training gate).
    parity = data["parity"]
    assert parity["sampled"] >= 0.5

    # The streamed sampler's footprint beats the O(n²) dense baseline at
    # the same size (full scope; at smoke sizes both arms are dominated
    # by the interpreter's own RSS, so only record).
    if not is_smoke():
        dense_mb = data["dense_baseline"]["peak_rss_mb"]
        streamed_mb = records[0]["generation"]["peak_rss_mb"]
        if dense_mb and streamed_mb:
            assert streamed_mb < dense_mb

        # Sampled training matches full-batch accuracy where both run.
        assert parity["sampled"] >= parity["full_batch"] - 0.10
