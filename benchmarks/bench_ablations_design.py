"""Design-choice ablations beyond the paper's tables (DESIGN.md extensions).

Three ablations of AdamGNN components the paper motivates but does not
table individually:

* **fitness linearity** — Eq. 2 with vs. without the ``f_φ^c =
  sigmoid(h_jᵀh_i)`` factor (the He et al. 2017 motivation);
* **unpooling normalisation** — the literal ``Ĥ_k = S_1(…(S_k H_k))`` vs.
  row-normalised S (see DESIGN.md implementation notes);
* **ego-network radius** — λ = 1 (paper default) vs. λ = 2.
"""

from typing import Dict

import numpy as np
import pytest

from repro.core import AdamGNNNodeClassifier
from repro.datasets import load_node_dataset
from repro.training import (NodeClassificationTrainer, TrainConfig,
                            prepare_node_features)

from .common import emit, is_smoke


def _train_variant(dataset_name: str, **model_kwargs) -> float:
    dataset = load_node_dataset(dataset_name, seed=0)
    features = prepare_node_features(dataset)
    normalize_unpool = model_kwargs.pop("normalize_unpool", None)
    model = AdamGNNNodeClassifier(features.shape[1], dataset.num_classes,
                                  num_levels=3,
                                  rng=np.random.default_rng(0),
                                  **model_kwargs)
    if normalize_unpool is not None:
        model.encoder.normalize_unpool = normalize_unpool
    epochs = 2 if is_smoke() else 80
    config = TrainConfig(epochs=epochs, patience=25, seed=0)
    result = NodeClassificationTrainer(config).fit(model, dataset)
    return result.test_accuracy * 100.0


def generate_ablations() -> str:
    dataset = "cora" if is_smoke() else "wiki"
    rows: Dict[str, float] = {
        "full model (λ=1)": _train_variant(dataset),
        "without f_c linearity": _train_variant(dataset,
                                                use_linearity=False),
        "row-normalised unpool": _train_variant(dataset,
                                                normalize_unpool=True),
        "radius λ=2": _train_variant(dataset, radius=2),
    }
    width = 12
    lines = [f"AdamGNN design ablations — node classification on "
             f"{dataset} (accuracy %)",
             f"{'variant':<26}{'accuracy':>{width}}",
             "-" * (26 + width)]
    for name, value in rows.items():
        lines.append(f"{name:<26}{value:>{width}.2f}")
    lines.append("")
    lines.append("These are exploratory single-run probes of design choices "
                 "the paper fixes\nwithout ablating (λ=1, literal unpooling, "
                 "f_c on); see EXPERIMENTS.md for the\nrecorded readings.")
    return "\n".join(lines)


@pytest.mark.benchmark(group="ablations")
def test_design_ablations(benchmark):
    table = benchmark.pedantic(generate_ablations, rounds=1, iterations=1)
    emit("Design ablations: fitness linearity / unpool norm / radius",
         table)
    assert table
