"""Shared infrastructure for the benchmark harness.

Every table and figure of the paper's evaluation has one bench module.
Each bench:

* regenerates the experiment with this library (synthetic data, NumPy
  substrate — absolute numbers differ from the paper; *shapes* should
  hold, see EXPERIMENTS.md);
* prints the rows next to the paper's reported values;
* writes the rendered table to ``benchmarks/results/<name>.txt``.

Output is emitted through :func:`emit`, which bypasses pytest's capture so
the tables appear in ``pytest benchmarks/ --benchmark-only`` logs, and is
also persisted to disk.

Scope control: set ``REPRO_BENCH_SCOPE=smoke`` to shrink every bench to a
seconds-long sanity pass (used by CI); the default ``full`` scope runs the
complete grids (~30–45 minutes total on a laptop CPU).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, Sequence

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Environment knobs that change what a wall-clock number means.  BLAS
#: thread counts matter because the fused kernels lean on matmul; the
#: kernel worker count is the chunk-parallel executor's pool size.
THREAD_ENV_KEYS = ("REPRO_NUM_WORKERS", "OMP_NUM_THREADS",
                   "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
                   "NUMEXPR_NUM_THREADS")

#: Data-parallel knobs: process count routing ``fit`` through the sharded
#: trainer, and the multiprocessing start-method override.
DP_ENV_KEYS = ("REPRO_DP_PROCS", "REPRO_DP_START_METHOD")


def bench_environment(dtype: str, **extra) -> dict:
    """Precision/parallelism context for a recorded measurement.

    Records the compute dtype, the kernel pool configuration, the BLAS
    thread environment and the data-parallel knobs; benches measuring a
    sharded run pass run-scoped facts (shard count, comm segment bytes,
    effective process count) through ``extra``.
    """
    from repro.tensor import get_num_workers
    env = {
        "dtype": dtype,
        "kernel_workers": get_num_workers(),
        "cpu_count": os.cpu_count(),
        "thread_env": {key: os.environ.get(key)
                       for key in THREAD_ENV_KEYS},
        "dp_env": {key: os.environ.get(key) for key in DP_ENV_KEYS},
    }
    env.update(extra)
    return env


def peak_rss_bytes() -> int:
    """High-water resident set size of this process, in bytes.

    Uses ``resource.getrusage`` (``ru_maxrss`` is KiB on Linux, bytes on
    macOS) with a ``psutil`` fallback; returns 0 when neither source is
    available.  Note the value is a process-lifetime high-water mark — to
    attribute a peak to one workload, run it via :func:`run_isolated`.
    """
    try:
        import resource
        raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(raw) if sys.platform == "darwin" else int(raw) * 1024
    except Exception:
        pass
    try:
        import psutil
        return int(psutil.Process().memory_info().rss)
    except Exception:
        return 0


def run_isolated(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` in a forked child; return
    ``(result, peak_rss_bytes)``.

    Forking gives the workload a private address space, so the child's
    ``ru_maxrss`` *is* the workload's peak (the parent's own history
    cannot inflate it) — this is how benches report memory alongside
    latency.  Falls back to in-process execution (peak measured before
    and after, high-water semantics) when fork is unavailable; the
    result must be picklable on the forked path.
    """
    import multiprocessing as mp
    try:
        ctx = mp.get_context("fork")
    except ValueError:
        return fn(*args, **kwargs), peak_rss_bytes()
    parent_conn, child_conn = ctx.Pipe(duplex=False)

    def _child() -> None:
        try:
            result = fn(*args, **kwargs)
            child_conn.send(("ok", result, peak_rss_bytes()))
        except BaseException as exc:  # surface the real failure in the parent
            child_conn.send(("err", repr(exc), peak_rss_bytes()))
        finally:
            child_conn.close()

    proc = ctx.Process(target=_child)
    proc.start()
    child_conn.close()
    try:
        status, payload, peak = parent_conn.recv()
    finally:
        proc.join()
        parent_conn.close()
    if status == "err":
        raise RuntimeError(f"run_isolated child failed: {payload}")
    return payload, peak


def current_commit() -> str:
    """Short hash of HEAD, or ``"unknown"`` outside a usable git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent, capture_output=True,
            text=True, timeout=10, check=True).stdout.strip() or "unknown"
    except Exception:
        return "unknown"

#: Paper-reported values, used to print side-by-side comparisons.
PAPER_TABLE1 = {
    # model: {dataset: accuracy %}
    "gin": {"nci1": 76.17, "nci109": 77.31, "dd": 78.05, "mutag": 75.11,
            "mutagenicity": 77.24, "proteins": 75.37},
    "3wl": {"nci1": 79.38, "nci109": 78.34, "dd": 78.32, "mutag": 78.34,
            "mutagenicity": 81.52, "proteins": 77.92},
    "sortpool": {"nci1": 72.25, "nci109": 73.21, "dd": 73.31,
                 "mutag": 71.47, "mutagenicity": 74.65, "proteins": 70.49},
    "diffpool": {"nci1": 76.47, "nci109": 76.17, "dd": 76.16,
                 "mutag": 73.61, "mutagenicity": 76.30, "proteins": 71.90},
    "topkpool": {"nci1": 77.56, "nci109": 77.02, "dd": 73.98,
                 "mutag": 76.60, "mutagenicity": 78.64, "proteins": 72.94},
    "sagpool": {"nci1": 75.76, "nci109": 73.67, "dd": 76.21,
                "mutag": 75.27, "mutagenicity": 77.09, "proteins": 75.27},
    "structpool": {"nci1": 77.61, "nci109": 78.39, "dd": 80.10,
                   "mutag": 77.13, "mutagenicity": 80.94,
                   "proteins": 78.84},
    "adamgnn": {"nci1": 79.77, "nci109": 79.36, "dd": 81.51,
                "mutag": 80.11, "mutagenicity": 82.04, "proteins": 77.04},
}

PAPER_TABLE2_NC = {
    "gcn": {"acm": 92.25, "citeseer": 76.13, "cora": 88.90,
            "emails": 85.03, "dblp": 82.68, "wiki": 69.03},
    "sage": {"acm": 92.48, "citeseer": 76.75, "cora": 88.92,
             "emails": 85.80, "dblp": 83.20, "wiki": 71.83},
    "gat": {"acm": 91.69, "citeseer": 76.96, "cora": 88.33,
            "emails": 84.67, "dblp": 84.04, "wiki": 56.50},
    "gin": {"acm": 90.66, "citeseer": 76.39, "cora": 87.74,
            "emails": 87.18, "dblp": 82.54, "wiki": 66.29},
    "topkpool": {"acm": 93.42, "citeseer": 75.59, "cora": 87.68,
                 "emails": 89.16, "dblp": 85.27, "wiki": 71.33},
    "adamgnn": {"acm": 93.61, "citeseer": 78.92, "cora": 90.92,
                "emails": 91.88, "dblp": 88.36, "wiki": 73.37},
}

PAPER_TABLE2_LP = {
    "gcn": {"acm": 0.975, "citeseer": 0.887, "cora": 0.918,
            "emails": 0.930, "dblp": 0.904, "wiki": 0.523},
    "sage": {"acm": 0.972, "citeseer": 0.884, "cora": 0.908,
             "emails": 0.923, "dblp": 0.889, "wiki": 0.577},
    "gat": {"acm": 0.968, "citeseer": 0.910, "cora": 0.912,
            "emails": 0.930, "dblp": 0.889, "wiki": 0.594},
    "gin": {"acm": 0.787, "citeseer": 0.808, "cora": 0.878,
            "emails": 0.859, "dblp": 0.820, "wiki": 0.501},
    "topkpool": {"acm": 0.890, "citeseer": 0.918, "cora": 0.932,
                 "emails": 0.936, "dblp": 0.934, "wiki": 0.734},
    "adamgnn": {"acm": 0.988, "citeseer": 0.970, "cora": 0.948,
                "emails": 0.937, "dblp": 0.965, "wiki": 0.920},
}

PAPER_TABLE3 = {
    "task only": {"dblp_lp": 0.956, "citeseer_nc": 76.63,
                  "mutagenicity_gc": 79.04},
    "task + kl": {"dblp_lp": None, "citeseer_nc": 77.17,
                  "mutagenicity_gc": 78.94},
    "task + recon": {"dblp_lp": None, "citeseer_nc": 77.64,
                     "mutagenicity_gc": 80.65},
    "full": {"dblp_lp": 0.965, "citeseer_nc": 78.92,
             "mutagenicity_gc": 82.04},
}

PAPER_TABLE4 = {
    "diffpool": {"nci1": 6.23, "nci109": 3.22, "proteins": 3.65},
    "sagpool": {"nci1": 1.95, "nci109": 1.55, "proteins": 0.45},
    "topkpool": {"nci1": 4.58, "nci109": 4.45, "proteins": 1.46},
    "structpool": {"nci1": 6.31, "nci109": 6.04, "proteins": 1.34},
    "adamgnn": {"nci1": 3.62, "nci109": 3.24, "proteins": 1.03},
}

PAPER_TABLE5 = {
    "no flyback": {"nci1": 75.54, "nci109": 77.49, "mutagenicity": 79.89},
    "full model": {"nci1": 79.77, "nci109": 79.36, "mutagenicity": 82.04},
}

PAPER_TABLE8 = {
    # levels: {dataset_task: value}
    2: {"dblp_lp": 0.951, "wiki_lp": 0.912, "acm_nc": 92.60,
        "citeseer_nc": 77.68, "emails_nc": 86.83, "mutagenicity_gc": 78.16},
    3: {"dblp_lp": 0.958, "wiki_lp": 0.913, "acm_nc": 93.38,
        "citeseer_nc": 74.67, "emails_nc": 91.88, "mutagenicity_gc": 82.04},
    4: {"dblp_lp": 0.959, "wiki_lp": 0.917, "acm_nc": 93.61,
        "citeseer_nc": 76.15, "emails_nc": 90.61, "mutagenicity_gc": 81.58},
    5: {"dblp_lp": 0.965, "wiki_lp": 0.920, "acm_nc": 90.84,
        "citeseer_nc": 78.92, "emails_nc": None, "mutagenicity_gc": 81.01},
}


def bench_scope() -> str:
    """``"full"`` (default) or ``"smoke"`` from REPRO_BENCH_SCOPE."""
    return os.environ.get("REPRO_BENCH_SCOPE", "full").lower()


def is_smoke() -> bool:
    return bench_scope() == "smoke"


#: Set by the benchmarks conftest to pytest's capfd fixture, letting
#: :func:`emit` print through the fd-level capture.
CAPTURE_CONTROL = None


def emit(name: str, text: str) -> None:
    """Print a rendered table bypassing pytest capture, and persist it."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"

    def write() -> None:
        sys.__stdout__.write(banner + text + "\n")
        sys.__stdout__.flush()

    if CAPTURE_CONTROL is not None:
        with CAPTURE_CONTROL.disabled():
            write()
    else:
        write()
    RESULTS_DIR.mkdir(exist_ok=True)
    safe = name.lower().replace(" ", "_").replace("/", "-")
    (RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")


def comparison_table(rows: Dict[str, Dict[str, float]],
                     paper: Dict[str, Dict[str, float]],
                     row_names: Sequence[str], col_names: Sequence[str],
                     fmt: str = "{:.2f}") -> str:
    """Render measured-vs-paper cells as ``measured (paper)``."""
    width = max(18, max(len(c) for c in col_names) + 11)
    header = f"{'row':<14}" + "".join(f"{c:>{width}}" for c in col_names)
    lines = [header, "-" * len(header)]
    for row in row_names:
        cells = []
        for col in col_names:
            measured = rows.get(row, {}).get(col)
            reference = paper.get(row, {}).get(col)
            m_txt = fmt.format(measured) if measured is not None else "-"
            p_txt = fmt.format(reference) if reference is not None else "-"
            cells.append(f"{m_txt + ' (' + p_txt + ')':>{width}}")
        lines.append(f"{row:<14}" + "".join(cells))
    lines.append("")
    lines.append("cell format: measured (paper).  Absolute values are not "
                 "comparable\n(synthetic data, NumPy-on-CPU substrate); "
                 "compare orderings and gaps.")
    return "\n".join(lines)
