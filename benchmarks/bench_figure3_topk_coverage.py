"""Figure 3 / Appendix A.1 — node coverage of Top-k selection.

For a range of pooling ratios, applies a Top-k selection and measures the
fraction of the graph's nodes that remain covered (selected, or adjacent
to a selected node) — the paper's argument that a fixed ratio k loses node
information, motivating the adaptive selection.  The AdamGNN row shows the
adaptive ego-network selection covering every node *by construction*
(absorbed or retained), with no ratio hyper-parameter.
"""

from typing import Dict, List

import numpy as np
import pytest

from repro.core import AdaptiveGraphPooling
from repro.datasets import load_node_dataset
from repro.pooling import topk_per_graph
from repro.tensor import Tensor, make_rng

from .common import emit, is_smoke

RATIOS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def coverage_of_selection(graph, keep: np.ndarray) -> float:
    """Fraction of nodes that are kept or adjacent to a kept node."""
    covered = np.zeros(graph.num_nodes, dtype=bool)
    covered[keep] = True
    src, dst = graph.edge_index
    kept_mask = np.zeros(graph.num_nodes, dtype=bool)
    kept_mask[keep] = True
    covered[dst[kept_mask[src]]] = True
    return float(covered.mean())


def generate_figure3() -> str:
    names = ("cora",) if is_smoke() else ("cora", "citeseer", "wiki")
    rng = make_rng(0)
    lines: List[str] = []
    header = f"{'dataset':<10}" + "".join(f"{r:>8.1f}" for r in RATIOS) \
        + f"{'adaptive':>10}"
    lines.append("node-coverage ratio vs. Top-k pooling ratio")
    lines.append(header)
    lines.append("-" * len(header))
    for name in names:
        graph = load_node_dataset(name, seed=0).graph
        scores = rng.normal(size=graph.num_nodes)
        batch = np.zeros(graph.num_nodes, dtype=np.int64)
        row: Dict[float, float] = {}
        for ratio in RATIOS:
            keep = topk_per_graph(scores, batch, 1, ratio)
            row[ratio] = coverage_of_selection(graph, keep)
        # AdamGNN's adaptive selection: every node is absorbed or retained.
        pool = AdaptiveGraphPooling(graph.num_features or 8,
                                    rng=np.random.default_rng(0))
        x = (graph.x if graph.x is not None
             else np.eye(graph.num_nodes, 8))
        level = pool(Tensor(x), graph.edge_index, graph.edge_weight)
        assignment_rows = set(level.assignment.rows.tolist())
        adaptive_coverage = len(assignment_rows) / graph.num_nodes
        lines.append(f"{name:<10}"
                     + "".join(f"{row[r]:>8.2f}" for r in RATIOS)
                     + f"{adaptive_coverage:>10.2f}")
    lines.append("")
    lines.append("Paper's Figure 3: coverage rises with k, so small fixed "
                 "ratios discard\nnode information.  The adaptive column is "
                 "1.00 by construction: every node\nis absorbed into a "
                 "hyper-node or retained (no hyper-parameter).")
    return "\n".join(lines)


@pytest.mark.benchmark(group="figure3")
def test_figure3_topk_coverage(benchmark):
    figure = benchmark.pedantic(generate_figure3, rounds=1, iterations=1)
    emit("Figure 3: Top-k coverage vs. adaptive selection", figure)
    assert "adaptive" in figure
