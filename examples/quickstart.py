"""Quickstart: train AdamGNN for node classification in ~30 lines.

Builds the synthetic Cora benchmark, trains an
:class:`~repro.core.AdamGNNNodeClassifier` with the paper's loss
``L = L_task + γ·L_KL + δ·L_R`` (Eq. 7), and prints test accuracy next to a
2-layer GCN baseline.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.datasets import load_node_dataset
from repro.tensor import Tensor
from repro.training import (NodeClassificationTrainer, TrainConfig,
                            make_node_classifier, prepare_node_features)


def main() -> None:
    # 1. Load a benchmark graph (deterministic synthetic stand-in for Cora:
    #    2.7k-node citation network scaled to ~570 nodes, 7 classes).
    dataset = load_node_dataset("cora", seed=0)
    graph = dataset.graph
    print(f"Dataset: {dataset.name} — {graph.num_nodes} nodes, "
          f"{graph.num_edges // 2} edges, {graph.num_features} features, "
          f"{dataset.num_classes} classes")

    # 2. Build models.  AdamGNN needs no pooling ratio: the multi-grained
    #    structure is discovered adaptively (Section 3.2 of the paper).
    in_features = prepare_node_features(dataset).shape[1]
    adamgnn = make_node_classifier("adamgnn", in_features,
                                   dataset.num_classes, seed=0,
                                   num_levels=3)
    gcn = make_node_classifier("gcn", in_features, dataset.num_classes,
                               seed=0)

    # 3. Train with the paper's protocol: Adam, γ=0.1, δ=0.01, early
    #    stopping on the validation split.
    config = TrainConfig(epochs=100, patience=25, gamma=0.1, delta=0.01,
                         seed=0)
    trainer = NodeClassificationTrainer(config)

    gcn_result = trainer.fit(gcn, dataset)
    adam_result = trainer.fit(adamgnn, dataset)

    # 4. Compare.
    print(f"\n{'model':<10}{'test accuracy':>15}{'epochs':>9}")
    print(f"{'GCN':<10}{gcn_result.test_accuracy:>15.4f}"
          f"{gcn_result.epochs_run:>9}")
    print(f"{'AdamGNN':<10}{adam_result.test_accuracy:>15.4f}"
          f"{adam_result.epochs_run:>9}")

    # 5. Serve: ``inference()`` (eval mode + no_grad) runs the forward
    #    without building an autograd tape — same logits, bit for bit.
    #    Feed the model at its own compute dtype (training defaults to
    #    float32): float64 features would silently upcast the whole
    #    forward through NumPy promotion.
    features = prepare_node_features(dataset)
    dtype = adamgnn.parameters()[0].data.dtype
    with adamgnn.inference():
        logits, _ = adamgnn(Tensor(features, dtype=dtype), graph.edge_index,
                            graph.edge_weight)
    test = dataset.splits.test
    predicted = logits.data[test].argmax(axis=-1)
    agreement = (predicted == graph.y[test]).mean()
    print(f"\nno_grad serving pass over the test split: "
          f"accuracy {agreement:.4f} (matches the trained result above)")


if __name__ == "__main__":
    np.seterr(all="raise", under="ignore")
    main()
