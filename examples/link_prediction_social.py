"""Link prediction on a social-style network (the paper's LP protocol).

Scenario: a webpage/social graph with weak node features and strong
community structure — the Wiki setting where the paper reports its largest
link-prediction gains.  We hold out 10% + 10% of the edges (Section 4.1),
train an encoder on the remaining graph, and score held-out pairs with the
inner-product decoder ``σ(h_uᵀ h_v)``.

Run with::

    python examples/link_prediction_social.py
"""

import numpy as np

from repro.core import link_probabilities
from repro.datasets import load_node_dataset, split_links
from repro.tensor import Tensor
from repro.training import (LinkPredictionTrainer, TrainConfig,
                            make_link_predictor, roc_auc)


def main() -> None:
    dataset = load_node_dataset("wiki", seed=0)
    graph = dataset.graph
    print(f"Dataset: {dataset.name} — {graph.num_nodes} nodes, "
          f"{graph.num_edges // 2} edges, {dataset.num_classes} communities")

    # The 80/10/10 edge split; negatives sampled per split, disjointly.
    splits = split_links(graph, np.random.default_rng(0))
    print(f"train/val/test edges: {splits.train_edges.shape[1]} / "
          f"{splits.val_edges.shape[1]} / {splits.test_edges.shape[1]}")

    config = TrainConfig(epochs=120, patience=35, seed=0)
    trainer = LinkPredictionTrainer(config)

    results = {}
    for name in ("gcn", "adamgnn"):
        model = make_link_predictor(name, graph.num_features, seed=0,
                                    num_levels=4)
        results[name] = trainer.fit(model, dataset, splits)

    print(f"\n{'model':<10}{'test ROC-AUC':>14}")
    for name, result in results.items():
        print(f"{name:<10}{result.test_auc:>14.4f}")

    # Inspect a few concrete predictions from the AdamGNN encoder.
    model = make_link_predictor("adamgnn", graph.num_features, seed=0,
                                num_levels=4)
    trainer.fit(model, dataset, splits)
    model.eval()
    out = model(Tensor(splits.train_graph.x),
                splits.train_graph.edge_index,
                splits.train_graph.edge_weight)
    pos_probs = link_probabilities(out.h, splits.test_edges[:, :5])
    neg_probs = link_probabilities(out.h, splits.test_negatives[:, :5])
    print("\nsample decoder probabilities")
    print("  true edges:     ", np.round(pos_probs, 3))
    print("  sampled non-edges:", np.round(neg_probs, 3))
    mixed = np.concatenate([pos_probs, neg_probs])
    labels = np.concatenate([np.ones(5), np.zeros(5)])
    print(f"  sample AUC: {roc_auc(mixed, labels):.3f}")


if __name__ == "__main__":
    main()
