"""Serve graph-classification traffic through the async front end.

Stands up a :class:`~repro.serving.GraphServer` over a trained AdamGNN
classifier and pushes a burst of single-graph requests at it: responses
come back through :class:`~repro.serving.PredictionHandle` futures,
micro-batched behind the scenes into size-bucketed collated forwards.
Also demonstrates the failure surface — a tiny deadline produces
``DeadlineExceeded`` timeout responses, and a tiny pending bound produces
typed ``Overloaded`` sheds.

Run with::

    python examples/serving_frontend.py
"""

import numpy as np

from repro.datasets import load_graph_dataset
from repro.serving import (DeadlineExceeded, GraphServer, Overloaded,
                           ServingConfig)
from repro.training import TrainConfig
from repro.training.experiment import make_graph_classifier


def main() -> None:
    # 1. A trained model and the graph universe it serves.  (Training is
    #    skipped here — see molecule_classification.py — because serving
    #    behaviour is identical for any frozen weights.)
    dataset = load_graph_dataset("proteins", seed=0)
    model = make_graph_classifier("adamgnn", dataset.num_features, 2,
                                  seed=0)
    model.astype(TrainConfig().dtype)
    eval_ids = np.concatenate([dataset.val_index, dataset.test_index])

    # 2. Serve a burst of single-graph requests.  The server coalesces
    #    them into size-bucketed micro-batches; every response is bitwise
    #    what a direct Predictor call on the same collation returns.
    config = ServingConfig(max_batch=16, max_delay_ms=2.0, workers=1,
                           max_pending=256)
    with GraphServer(model, dataset, config) as server:
        handles = [server.submit(int(gid), deadline_ms=1000.0)
                   for gid in eval_ids]
        results = [h.result(timeout=30.0) for h in handles]
        stats = server.stats()

        # A second identical burst: the same request compositions collate
        # to the same cached chunks, whose batch objects replay their
        # captured workspace plans — no new allocations.
        for handle in [server.submit(int(g), deadline_ms=1000.0)
                       for g in eval_ids]:
            handle.result(timeout=30.0)
        replay = server.stats()

    print(f"served {stats['completed']} requests in {stats['batches']} "
          f"micro-batches (mean size {stats['mean_batch_size']:.1f})")
    enzymes = sum(r.label for r in results)
    print(f"predicted enzyme for {enzymes}/{len(results)} graphs")
    print(f"burst 1: {stats['arenas']['allocations']:.0f} arena buffer "
          f"allocations, {stats['arenas']['structure_hits']:.0f} "
          f"captured-plan replays")
    print(f"burst 2: {replay['arenas']['allocations'] - stats['arenas']['allocations']:.0f} "
          f"new allocations, "
          f"{replay['arenas']['structure_hits'] - stats['arenas']['structure_hits']:.0f} "
          f"captured-plan replays, "
          f"{replay['collation']['hits'] - stats['collation']['hits']:.0f} "
          f"collation cache hits")

    # 3. The failure surface: deadlines and admission control are typed,
    #    never silent.
    with GraphServer(model, dataset,
                     ServingConfig(max_batch=4, max_delay_ms=50.0,
                                   max_pending=4)) as server:
        strict = server.submit(int(eval_ids[0]), deadline_ms=0.0)
        try:
            strict.result(timeout=5.0)
        except DeadlineExceeded as exc:
            print(f"deadline response: {exc}")
        backlog = [server.submit(int(g), deadline_ms=1000.0)
                   for g in eval_ids[:4]]
        try:
            server.submit(int(eval_ids[4]))
        except Overloaded as exc:
            print(f"shed response: {exc}")
        for handle in backlog:
            handle.result(timeout=30.0)


if __name__ == "__main__":
    main()
