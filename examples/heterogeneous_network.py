"""Heterogeneous-graph extension: AdamGNN on a typed-edge network.

The paper's conclusion names heterogeneous networks as future work; this
example runs the :class:`~repro.core.HeteroAdamGNN` extension on a
bibliographic-style graph with two relations over the same papers —
``shares-author`` (dense inside communities) and ``cites`` (sparser,
partly cross-community) — and compares against treating all edges as one
type.

Run with::

    python examples/heterogeneous_network.py
"""

import numpy as np

from repro.core import HeteroAdamGNN
from repro.datasets import load_hetero_dataset
from repro.nn import Linear, Module, cross_entropy
from repro.optim import Adam
from repro.tensor import Tensor, relu
from repro.training import accuracy


class HeteroClassifier(Module):
    """HeteroAdamGNN encoder + linear head."""

    def __init__(self, in_features, num_classes, num_relations, rng):
        super().__init__()
        self.encoder = HeteroAdamGNN(in_features,
                                     num_relations=num_relations,
                                     hidden=32, num_levels=2, rng=rng)
        self.head = Linear(32, num_classes, rng=rng)

    def forward(self, x, edge_index, edge_type):
        out = self.encoder(x, edge_index, edge_type)
        return self.head(out.h), out


def train(model, graph, edge_type, masks, labels, epochs=60):
    optimizer = Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
    x = Tensor(graph.x)
    best_val, best_test = 0.0, 0.0
    for _ in range(epochs):
        model.zero_grad()
        logits, _ = model(x, graph.edge_index, edge_type)
        loss = cross_entropy(logits, labels, mask=masks["train"])
        loss.backward()
        optimizer.step()
        val = accuracy(logits.data, labels, masks["val"])
        if val >= best_val:
            best_val = val
            best_test = accuracy(logits.data, labels, masks["test"])
    return best_test


def main() -> None:
    dataset, edge_type = load_hetero_dataset(seed=0)
    graph = dataset.graph
    labels = np.asarray(graph.y)
    masks = dataset.splits.masks(graph.num_nodes)
    relation_counts = np.bincount(edge_type, minlength=2) // 2
    print(f"Typed network: {graph.num_nodes} papers, "
          f"{relation_counts[0]} shares-author edges, "
          f"{relation_counts[1]} cites edges, "
          f"{dataset.num_classes} research areas")

    rng = np.random.default_rng(0)
    typed = HeteroClassifier(graph.num_features, dataset.num_classes, 2,
                             rng)
    typed_acc = train(typed, graph, edge_type, masks, labels)

    # Baseline: collapse the relations into a single type.
    collapsed = HeteroClassifier(graph.num_features, dataset.num_classes,
                                 1, np.random.default_rng(0))
    collapsed_acc = train(collapsed, graph,
                          np.zeros_like(edge_type), masks, labels)

    print(f"\n{'variant':<28}{'test accuracy':>14}")
    print(f"{'typed relations (2)':<28}{typed_acc:>14.4f}")
    print(f"{'relations collapsed (1)':<28}{collapsed_acc:>14.4f}")
    print("\nThe typed fitness scorer can weigh the dense shares-author "
          "relation\ndifferently from citations when forming hyper-nodes — "
          "the extension the\npaper's conclusion proposes.")


if __name__ == "__main__":
    main()
