"""Graph classification on molecule-style data (the Table-1 setting).

Scenario: anticancer-activity screening à la NCI1 — each graph is a
molecule, the label marks activity, and the discriminative signal is a
*multi-scale structural* pattern (fused-ring assemblies).  We train AdamGNN
against the strongest sparse pooling baseline (SAGPool) and show the
per-stage coarsening AdamGNN discovered.

Run with::

    python examples/molecule_classification.py
"""

import numpy as np

from repro.datasets import load_graph_dataset
from repro.graph import GraphBatch
from repro.tensor import Tensor
from repro.training import (GraphClassificationTrainer, TrainConfig,
                            make_graph_classifier)


def main() -> None:
    dataset = load_graph_dataset("nci1", seed=0)
    sizes = [g.num_nodes for g in dataset.graphs]
    print(f"Dataset: {dataset.name} — {len(dataset.graphs)} molecules, "
          f"avg {np.mean(sizes):.1f} atoms, "
          f"{dataset.num_features} atom types")

    config = TrainConfig(epochs=30, patience=10, batch_size=32, seed=0)
    trainer = GraphClassificationTrainer(config)

    results = {}
    for name in ("sagpool", "adamgnn"):
        model = make_graph_classifier(name, dataset.num_features,
                                      dataset.num_classes, seed=0,
                                      num_levels=2)
        results[name] = trainer.fit(model, dataset)

    print(f"\n{'model':<10}{'test accuracy':>15}{'sec/epoch':>11}")
    for name, result in results.items():
        print(f"{name:<10}{result.test_accuracy:>15.4f}"
              f"{result.seconds_per_epoch:>11.2f}")

    # Peek inside AdamGNN: how did the adaptive pooling coarsen a batch?
    model = make_graph_classifier("adamgnn", dataset.num_features,
                                  dataset.num_classes, seed=0, num_levels=2)
    trainer.fit(model, dataset)
    # Collate at the model's compute dtype (training defaults to float32)
    # so the peek doesn't silently upcast the forward to float64.
    dtype = model.parameters()[0].data.dtype
    batch = GraphBatch.from_graphs(
        dataset.subset(dataset.test_index[:8])).astype(dtype)
    # Serving-style peek: ``inference()`` is eval mode + no_grad, so the
    # forward builds no autograd tape (same values, bit for bit).
    with model.inference():
        _, out = model(Tensor(batch.x, dtype=dtype), batch.edge_index,
                       batch.edge_weight, batch.batch, batch.num_graphs)
    trail = [batch.num_nodes] + [lvl.num_hyper for lvl in out.levels]
    arrow = " -> ".join(str(n) for n in trail)
    print(f"\nadaptive coarsening of an 8-molecule batch: {arrow} nodes")
    print("(no pooling ratio was configured — the ego-network selection "
          "adapts to each molecule)")


if __name__ == "__main__":
    main()
