"""Sharded data-parallel training — same bits, more processes.

Scenario: the PROTEINS graph-classification workload from Table 1,
trained three ways — the plain serial trainer, the sharded trainer
running its four shards in-process, and the sharded trainer packing
those same four shards onto two worker processes with gradients crossing
through shared memory.  The point of the demo is the repo's determinism
contract: **worker count is pure packing**, so all three runs produce
bitwise-identical weights and identical histories, and the only thing
that changes is the wall clock.

Run with::

    python examples/data_parallel_training.py

or route *any* training in the repo through the sharded trainer without
touching code::

    REPRO_DP_PROCS=2 python examples/data_parallel_training.py
"""

import time

import numpy as np

from repro.datasets import load_graph_dataset
from repro.training import (GraphClassificationTrainer, TrainConfig,
                            make_graph_classifier)


def train(dataset, num_procs: int, num_shards: int):
    config = TrainConfig(epochs=6, patience=10, batch_size=32, seed=0,
                         num_procs=num_procs, num_shards=num_shards)
    model = make_graph_classifier("adamgnn", dataset.num_features,
                                  dataset.num_classes, seed=0)
    start = time.perf_counter()
    result = GraphClassificationTrainer(config).fit(model, dataset)
    seconds = time.perf_counter() - start
    flat = np.concatenate([p.data.reshape(-1) for p in model.parameters()])
    return flat, result, seconds


def main() -> None:
    dataset = load_graph_dataset("proteins", seed=0)
    print(f"Dataset: {dataset.name} — {len(dataset.graphs)} graphs, "
          f"{int(dataset.train_index.shape[0])} train")

    runs = {
        "plain serial": train(dataset, num_procs=1, num_shards=1),
        "4 shards, in-process": train(dataset, num_procs=1, num_shards=4),
        "4 shards, 2 processes": train(dataset, num_procs=2, num_shards=4),
    }

    print(f"\n{'configuration':<24}{'mode':>8}{'test acc':>10}"
          f"{'wall s':>8}")
    for name, (_, result, seconds) in runs.items():
        mode = result.sharding["mode"] if result.sharding else "plain"
        print(f"{name:<24}{mode:>8}{result.test_accuracy:>10.4f}"
              f"{seconds:>8.2f}")

    # The determinism contract, checked bit for bit.
    flats = [flat for flat, _, _ in runs.values()]
    serial_flat, sharded_flat, procs_flat = flats
    print("\nsharded(in-process) == sharded(2 procs) bitwise:",
          np.array_equal(sharded_flat, procs_flat))
    print("4-shard run == plain serial run bitwise:",
          np.array_equal(serial_flat, sharded_flat),
          "(expected False — shard count changes batch composition;"
          " process count never changes anything)")

    sharding = runs["4 shards, 2 processes"][1].sharding
    print(f"\nsharding record: start method {sharding['start_method']}, "
          f"comm segment {sharding['comm_bytes'] / 1e6:.1f} MB, "
          f"chunks per shard "
          f"{sharding['assignment']['chunks_per_shard']}")
    if sharding["fallback"]:
        print(f"(fell back to serial sharding: {sharding['fallback']})")


if __name__ == "__main__":
    main()
