"""Explainability: which granularity level drives each class? (Figure 2).

Trains AdamGNN node classifiers on the ACM- and DBLP-style citation graphs
and prints the per-class flyback-attention heat map — the paper's Figure 2
analysis, where e.g. "data mining" papers attend to different granularity
levels on different datasets.

Run with::

    python examples/explain_attention.py
"""

import numpy as np

from repro.core import attention_by_class, format_attention_heatmap
from repro.datasets import load_node_dataset
from repro.tensor import Tensor
from repro.training import (NodeClassificationTrainer, TrainConfig,
                            make_node_classifier, prepare_node_features)

#: Class-name stand-ins matching the paper's topic labels.
CLASS_NAMES = {
    "acm": ["database", "wireless comm.", "data mining"],
    "dblp": ["database", "data mining", "AI", "computer vision"],
}


def main() -> None:
    for name in ("acm", "dblp"):
        dataset = load_node_dataset(name, seed=0)
        features = prepare_node_features(dataset)
        model = make_node_classifier("adamgnn", features.shape[1],
                                     dataset.num_classes, seed=0,
                                     num_levels=3)
        config = TrainConfig(epochs=80, patience=25, seed=0)
        result = NodeClassificationTrainer(config).fit(model, dataset)

        model.eval()
        # Feed the model at its own compute dtype (training defaults to
        # float32) — float64 features would silently upcast the forward.
        dtype = model.parameters()[0].data.dtype
        _, out = model(Tensor(features, dtype=dtype),
                       dataset.graph.edge_index,
                       dataset.graph.edge_weight)
        table = attention_by_class(out, dataset.graph.y,
                                   dataset.num_classes)
        print(f"\n=== {name.upper()} "
              f"(test accuracy {result.test_accuracy:.3f}, "
              f"{out.num_levels} levels constructed) ===")
        print(format_attention_heatmap(table, CLASS_NAMES[name]))

    print("\nReading: each row is a class; columns are granularity levels; "
          "values are the mean flyback attention β (rows sum to 1). "
          "Darker glyphs mark the level a class draws most semantics from.")


if __name__ == "__main__":
    main()
